"""Golden-trace regression suite for the Figure 3/4/5 scenarios.

Each golden file under ``tests/data/golden_traces/`` is the full
structured event stream of one attack trial (victim x scheme x secret,
seed 0).  The test re-runs the trial and diffs event-by-event: any
change to pipeline timing, scheme decisions, cache behaviour or the
instrumentation itself shows up as a readable first-divergence message
(e.g. "cycle 41 -> 42 for EXECUTE of 'f0'").

To bless intentional changes::

    pytest tests/trace/test_golden.py --refresh-golden

The perturbation tests at the bottom prove the suite has teeth: a
1-cycle change to one EU latency must be flagged at the right first
divergent event.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.harness import run_victim_trial
from repro.core.victims import victim_by_name
from repro.trace import EventKind, Tracer, first_divergence
from repro.trace.export import read_jsonl, write_jsonl

GOLDEN_DIR = Path(__file__).parent.parent / "data" / "golden_traces"

#: (figure, victim, scheme) — each traced for both secrets at seed 0.
GOLDEN_SCENARIOS = [
    ("fig3", "gdnpeu", "dom-nontso"),
    ("fig4", "gdmshr", "invisispec-spectre"),
    ("fig5", "girs", "dom-nontso"),
    # Forward interference ("It's a Trap!"): the younger squashed
    # window's EU occupancy delays the OLDER bound-to-retire f-chain
    # under an invisible-speculation scheme.
    ("fwd", "fwd-eu", "invisispec-spectre"),
]

GOLDEN_CASES = [
    (fig, victim, scheme, secret)
    for fig, victim, scheme in GOLDEN_SCENARIOS
    for secret in (0, 1)
]


def golden_path(fig: str, victim: str, scheme: str, secret: int) -> Path:
    return GOLDEN_DIR / f"{fig}_{victim}_{scheme}_s{secret}.jsonl"


def trace_trial(victim: str, scheme: str, secret: int, **victim_kwargs):
    tracer = Tracer()
    run_victim_trial(
        victim_by_name(victim, **victim_kwargs),
        scheme,
        secret,
        seed=0,
        tracer=tracer,
    )
    return tracer.events


@pytest.mark.parametrize("fig,victim,scheme,secret", GOLDEN_CASES)
def test_golden_trace(request, fig, victim, scheme, secret):
    path = golden_path(fig, victim, scheme, secret)
    live = trace_trial(victim, scheme, secret)
    if request.config.getoption("--refresh-golden"):
        path.parent.mkdir(parents=True, exist_ok=True)
        write_jsonl(live, path)
        return
    if not path.exists():
        pytest.fail(
            f"golden trace {path.name} missing; generate it with "
            "pytest tests/trace/test_golden.py --refresh-golden"
        )
    golden = read_jsonl(path)
    div = first_divergence(golden, live)
    if div is not None:
        pytest.fail(
            f"{path.name}: "
            + div.describe(left_name="golden", right_name="live")
        )


class TestSuiteHasTeeth:
    """A deliberate 1-cycle perturbation must be caught, at the right
    event."""

    def test_eu_latency_bump_flagged_at_first_issue(self):
        baseline = trace_trial("gdnpeu", "dom-nontso", 1)
        perturbed = trace_trial("gdnpeu", "dom-nontso", 1, f_latency=16)
        div = first_divergence(baseline, perturbed)
        assert div is not None, "a changed EU latency must diverge the trace"
        # The very first trace of latency 15 -> 16 is the ISSUE event
        # that grants the contended non-pipelined port: its ``lat``
        # payload records the new occupancy before any cycle shifts.
        assert div.left is not None and div.right is not None
        assert div.left.kind is EventKind.ISSUE
        assert div.left.cycle == div.right.cycle
        assert div.left.arg("lat") == 15
        assert div.right.arg("lat") == 16
        message = div.describe(left_name="golden", right_name="live")
        assert "payload changed" in message and "golden" in message

    def test_eu_latency_bump_shifts_execute_timing(self):
        baseline = trace_trial("gdnpeu", "dom-nontso", 1)
        perturbed = trace_trial("gdnpeu", "dom-nontso", 1, f_latency=16)

        def first_execute(events, name):
            return next(
                e.cycle
                for e in events
                if e.kind is EventKind.EXECUTE and e.instr == name
            )

        # And the downstream consequence: the perturbed occupant of the
        # non-pipelined port finishes execution one cycle later.
        assert (
            first_execute(perturbed, "gadget0")
            == first_execute(baseline, "gadget0") + 1
        )

    def test_dropped_event_flagged_as_early_end(self):
        baseline = trace_trial("gdnpeu", "dom-nontso", 1)
        div = first_divergence(baseline, baseline[:-1])
        assert div is not None
        assert div.index == len(baseline) - 1
        assert div.right is None
        assert "ended" in div.describe()

    def test_identical_rerun_is_clean(self):
        a = trace_trial("gdnpeu", "dom-nontso", 1)
        b = trace_trial("gdnpeu", "dom-nontso", 1)
        assert first_divergence(a, b) is None

    def test_forward_eu_latency_bump_flagged_at_first_issue(self):
        """Forward-victim teeth: bumping the secret-1 occupancy of the
        younger preempting op by one cycle (120 -> 121) is reported at
        the ISSUE event that grants it the non-pipelined port — same
        cycle, new ``lat`` payload — before any downstream shift of the
        older bound-to-retire chain."""
        baseline = trace_trial("fwd-eu", "invisispec-spectre", 1)
        perturbed = trace_trial(
            "fwd-eu", "invisispec-spectre", 1, slow_latency=121
        )
        div = first_divergence(baseline, perturbed)
        assert div is not None
        assert div.left is not None and div.right is not None
        assert div.left.kind is EventKind.ISSUE
        assert div.left.instr == "fwd preempt"
        assert div.left.cycle == div.right.cycle
        assert div.left.arg("lat") == 120
        assert div.right.arg("lat") == 121

    def test_forward_perturbation_shifts_the_older_load(self):
        """And the channel itself: the 1-cycle younger-window bump
        moves the OLDER invariant load A's execution later — timing of
        bound-to-retire work is exactly what the attack reads."""
        baseline = trace_trial("fwd-eu", "invisispec-spectre", 1)
        perturbed = trace_trial(
            "fwd-eu", "invisispec-spectre", 1, slow_latency=121
        )

        def first_execute(events, name):
            return next(
                e.cycle
                for e in events
                if e.kind is EventKind.EXECUTE and e.instr == name
            )

        assert first_execute(perturbed, "load A") > first_execute(
            baseline, "load A"
        )
