"""Property-based tests (hypothesis): codec round-trips and exporter
schema validity over arbitrary event sequences.

The domain mirrors what the instrumented simulator can emit: cycles are
non-negative, payload values are JSON scalars, kinds come from
:class:`EventKind`.  Within that domain *any* sequence must survive the
JSONL round-trip losslessly, and the Chrome trace exporter must always
produce a schema-valid, monotonically timestamped document — even for
orderings the simulator would never produce.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.trace import (
    EventKind,
    TraceEvent,
    first_divergence,
    validate_chrome_trace,
)
from repro.trace.events import make_args
from repro.trace.export import (
    events_from_jsonl,
    events_to_jsonl,
    to_chrome_trace,
)

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.text(max_size=16),
)

arg_tuples = st.dictionaries(
    st.text(min_size=1, max_size=10), scalars, max_size=4
).map(make_args)

events = st.builds(
    TraceEvent,
    cycle=st.integers(min_value=0, max_value=10**9),
    kind=st.sampled_from(list(EventKind)),
    core=st.one_of(st.none(), st.integers(min_value=0, max_value=7)),
    seq=st.one_of(st.none(), st.integers(min_value=0, max_value=10**6)),
    instr=st.one_of(st.none(), st.text(max_size=12)),
    args=arg_tuples,
)

event_lists = st.lists(events, max_size=40)


class TestJsonlRoundTrip:
    @settings(max_examples=120, deadline=None)
    @given(seq=event_lists)
    def test_lossless(self, seq):
        assert events_from_jsonl(events_to_jsonl(seq)) == seq

    @settings(max_examples=60, deadline=None)
    @given(seq=event_lists)
    def test_round_trip_has_no_divergence(self, seq):
        decoded = events_from_jsonl(events_to_jsonl(seq))
        assert first_divergence(seq, decoded) is None

    @settings(max_examples=60, deadline=None)
    @given(seq=event_lists)
    def test_one_object_per_line(self, seq):
        text = events_to_jsonl(seq)
        lines = [ln for ln in text.splitlines() if ln.strip()]
        assert len(lines) == len(seq)


class TestChromeExport:
    @settings(max_examples=100, deadline=None)
    @given(seq=event_lists)
    def test_always_schema_valid(self, seq):
        doc = to_chrome_trace(seq)
        assert validate_chrome_trace(doc) == []

    @settings(max_examples=60, deadline=None)
    @given(seq=event_lists)
    def test_body_timestamps_monotonic(self, seq):
        doc = to_chrome_trace(seq)
        body_ts = [
            ev["ts"] for ev in doc["traceEvents"] if ev["ph"] != "M"
        ]
        assert body_ts == sorted(body_ts)

    @settings(max_examples=60, deadline=None)
    @given(seq=event_lists)
    def test_json_serializable(self, seq):
        import json

        json.dumps(to_chrome_trace(seq))


class TestFirstDivergenceProperties:
    @settings(max_examples=60, deadline=None)
    @given(seq=event_lists)
    def test_identical_traces_never_diverge(self, seq):
        assert first_divergence(seq, list(seq)) is None

    @settings(max_examples=60, deadline=None)
    @given(seq=event_lists, extra=events)
    def test_length_mismatch_detected(self, seq, extra):
        div = first_divergence(seq, seq + [extra])
        assert div is not None
        assert div.index == len(seq)
        assert div.left is None and div.right == extra
