"""Differential invisibility: tracing must not perturb the simulation.

The whole observability layer rests on the emit paths being read-only:
a traced trial and an untraced trial of the same spec must be
*bit-identical* in everything the simulator reports — total cycles,
the channel (first visible access per monitored line, i.e. the secret
bits the attacks decode), the visible-access log, and every counter in
the metrics projection.  This is checked across every registered
scheme, both secrets, and five seeds.
"""

from __future__ import annotations

import pytest

from repro.core.harness import run_victim_trial
from repro.core.victims import victim_by_name
from repro.schemes import scheme_names
from repro.system.stats import machine_metrics
from repro.trace import Tracer

SEEDS = range(5)


def _run(scheme: str, secret: int, seed: int, tracer):
    result = run_victim_trial(
        victim_by_name("gdnpeu"),
        scheme,
        secret,
        seed=seed,
        tracer=tracer,
    )
    return result


@pytest.mark.parametrize("scheme", scheme_names())
@pytest.mark.parametrize("secret", (0, 1))
def test_tracing_is_invisible(scheme, secret):
    for seed in SEEDS:
        plain = _run(scheme, secret, seed, tracer=None)
        tracer = Tracer()
        traced = _run(scheme, secret, seed, tracer=tracer)
        label = f"{scheme}/s{secret}/seed{seed}"
        assert traced.cycles == plain.cycles, label
        assert traced.access_cycle == plain.access_cycle, label
        assert traced.visible == plain.visible, label
        # Full counter/gauge projection, so no stat drifts silently.
        assert (
            machine_metrics(traced.machine).to_json()
            == machine_metrics(plain.machine).to_json()
        ), label
        # And the traced run actually traced something.
        assert len(tracer.events) > 0, label


def test_untraced_trial_reports_no_events():
    result = _run("dom-nontso", 1, 0, tracer=None)
    assert result.events == []


def test_traced_trial_exposes_events_property():
    tracer = Tracer()
    result = _run("dom-nontso", 1, 0, tracer=tracer)
    assert result.events is tracer.events
    assert len(result.events) > 0
