"""End-to-end tests for the ``python -m repro.trace`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.trace.__main__ import main
from repro.trace.export import read_jsonl, validate_chrome_trace


def test_run_lists_filtered_events(capsys):
    rc = main(["run", "gdnpeu", "--kind", "scheme.decision"])
    assert rc == 0
    out = capsys.readouterr().out
    lines = [ln for ln in out.splitlines() if ln]
    assert lines, "expected at least one scheme.decision event"
    assert all("scheme.decision" in ln for ln in lines)


def test_run_limit(capsys):
    rc = main(["run", "gdnpeu", "--limit", "5"])
    assert rc == 0
    out = capsys.readouterr().out
    assert len([ln for ln in out.splitlines() if ln]) == 5


def test_run_instr_filter(capsys):
    rc = main(["run", "gdnpeu", "--instr", "transmitter"])
    assert rc == 0
    out = capsys.readouterr().out
    assert out.strip()
    assert all("transmitter" in ln for ln in out.splitlines() if ln)


def test_run_writes_jsonl_and_perfetto(tmp_path):
    jsonl = tmp_path / "t.jsonl"
    perfetto = tmp_path / "t.json"
    rc = main(
        ["run", "gdnpeu", "--jsonl", str(jsonl), "--perfetto", str(perfetto)]
    )
    assert rc == 0
    events = read_jsonl(str(jsonl))
    assert len(events) > 0
    doc = json.loads(perfetto.read_text())
    assert validate_chrome_trace(doc) == []
    assert len(doc["traceEvents"]) > 0


def test_run_ascii_renders_timeline(capsys):
    rc = main(["run", "gdnpeu", "--ascii"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "cycles" in out
    assert "R" in out  # retire markers


def test_run_metrics_prints_registry(capsys):
    rc = main(["run", "gdnpeu", "--metrics"])
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["counters"]["core0.pipeline.retired"] > 0
    assert "core0.stage.dispatch_to_issue" in doc["histograms"]


def test_run_unknown_victim_fails_cleanly(capsys):
    rc = main(["run", "no-such-victim"])
    assert rc == 2
    assert "unknown victim" in capsys.readouterr().err


def test_run_unknown_kind_fails_cleanly(capsys):
    rc = main(["run", "gdnpeu", "--kind", "bogus"])
    assert rc == 2


def test_diff_identical_and_divergent(tmp_path, capsys):
    s0 = tmp_path / "s0.jsonl"
    s1 = tmp_path / "s1.jsonl"
    assert main(["run", "gdnpeu", "--secret", "0", "--jsonl", str(s0)]) == 0
    assert main(["run", "gdnpeu", "--secret", "1", "--jsonl", str(s1)]) == 0
    capsys.readouterr()

    assert main(["diff", str(s0), str(s0)]) == 0
    assert "identical" in capsys.readouterr().out

    assert main(["diff", str(s0), str(s1)]) == 1
    assert "diverge" in capsys.readouterr().out


def test_diff_missing_file(capsys):
    rc = main(["diff", "/nonexistent/a.jsonl", "/nonexistent/b.jsonl"])
    assert rc == 2
    assert "error" in capsys.readouterr().err


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])
