"""Unit tests for the hierarchical metrics registry and its projection
from a finished machine run."""

from __future__ import annotations

import pytest

from repro.core.harness import run_victim_trial
from repro.core.victims import victim_by_name
from repro.system.stats import machine_metrics
from repro.trace import MetricsRegistry, Tracer, merge_all
from repro.trace.metrics import Histogram


class TestHistogram:
    def test_summary_of_empty(self):
        assert Histogram().summary() == {"count": 0}

    def test_percentile_nearest_rank(self):
        h = Histogram()
        for v in [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]:
            h.observe(v)
        assert h.percentile(0) == 1
        assert h.percentile(100) == 10
        assert h.percentile(50) in (5, 6)

    def test_percentile_empty_raises(self):
        with pytest.raises(ValueError):
            Histogram().percentile(50)

    def test_summary_fields(self):
        h = Histogram()
        for v in (2, 4, 6):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 3
        assert s["sum"] == 12
        assert s["mean"] == 4
        assert s["min"] == 2 and s["max"] == 6


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        r = MetricsRegistry()
        r.inc("a.b")
        r.inc("a.b", 4)
        assert r.counter("a.b") == 5
        assert r.counter("missing") == 0

    def test_gauges_overwrite(self):
        r = MetricsRegistry()
        r.set_gauge("peak", 3)
        r.set_gauge("peak", 2)
        assert r.gauge("peak") == 2

    def test_merge_semantics(self):
        a = MetricsRegistry()
        a.inc("n", 2)
        a.set_gauge("peak", 5)
        a.observe("lat", 10)
        b = MetricsRegistry()
        b.inc("n", 3)
        b.set_gauge("peak", 4)
        b.observe("lat", 20)
        a.merge(b)
        assert a.counter("n") == 5          # counters add
        assert a.gauge("peak") == 5         # gauges keep the max
        assert a.histogram("lat").samples == [10, 20]  # histograms pool

    def test_merge_all(self):
        regs = []
        for _ in range(3):
            r = MetricsRegistry()
            r.inc("n")
            regs.append(r)
        assert merge_all(regs).counter("n") == 3

    def test_to_json_merge_json_round_trip(self):
        a = MetricsRegistry()
        a.inc("n", 2)
        a.set_gauge("peak", 5)
        for v in (10, 20, 30):
            a.observe("lat", v)
        doc = a.to_json()
        b = MetricsRegistry()
        b.merge_json(doc)
        b.merge_json(doc)
        assert b.counter("n") == 4
        assert b.gauge("peak") == 5
        # Summaries cannot be un-summarized: each source trial
        # contributes its mean once.
        assert b.histogram("lat").samples == [20, 20]

    def test_subtree(self):
        r = MetricsRegistry()
        r.inc("core0.retired", 1)
        r.inc("core1.retired", 2)
        r.set_gauge("core0.peak", 3)
        sub = r.subtree("core0")
        assert sub.counter("core0.retired") == 1
        assert sub.counter("core1.retired") == 0
        assert sub.gauge("core0.peak") == 3

    def test_as_flat_dict(self):
        r = MetricsRegistry()
        r.inc("n", 2)
        r.observe("lat", 4)
        flat = r.as_flat_dict()
        assert flat["n"] == 2
        assert flat["lat.mean"] == 4
        assert flat["lat.count"] == 1

    def test_names_and_len(self):
        r = MetricsRegistry()
        r.inc("b")
        r.set_gauge("a", 1)
        r.observe("c", 1)
        assert r.names() == ["a", "b", "c"]
        assert len(r) == 3


class TestMachineMetrics:
    @pytest.fixture(scope="class")
    def traced_trial(self):
        tracer = Tracer()
        result = run_victim_trial(
            victim_by_name("gdnpeu"), "dom-nontso", 1, tracer=tracer
        )
        return result, tracer

    def test_counters_match_report(self, traced_trial):
        result, tracer = traced_trial
        reg = machine_metrics(result.machine, events=tracer.events)
        core = result.core
        assert reg.counter("core0.pipeline.retired") == core.stats.retired
        assert reg.counter("core0.pipeline.cycles") == core.stats.cycles
        assert reg.gauge("machine.cycles") == result.cycles
        llc = result.machine.hierarchy.llc
        assert reg.counter("cache.LLC.hits") == llc.stats.hits
        assert reg.counter("cache.LLC.misses") == llc.stats.misses

    def test_stage_histograms_present(self, traced_trial):
        result, tracer = traced_trial
        reg = machine_metrics(result.machine, events=tracer.events)
        d2i = reg.histogram("core0.stage.dispatch_to_issue")
        assert d2i.count > 0
        assert all(v >= 0 for v in d2i.samples)
        w2c = reg.histogram("core0.stage.writeback_to_commit")
        assert w2c.count > 0

    def test_no_events_no_histograms(self, traced_trial):
        result, _ = traced_trial
        reg = machine_metrics(result.machine)
        assert not reg.histograms
