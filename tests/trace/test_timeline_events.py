"""The trace-driven timeline must reproduce the legacy bookkeeping's
rows exactly, for every Figure 3/4/5 scenario."""

from __future__ import annotations

import pytest

from repro.analysis.timeline import (
    _rows_from_instrs,
    render_timeline,
    rows_from_events,
    timeline_rows,
)
from repro.core.harness import run_victim_trial
from repro.core.victims import victim_by_name
from repro.trace import Tracer

SCENARIOS = [
    ("gdnpeu", "dom-nontso"),
    ("gdmshr", "invisispec-spectre"),
    ("girs", "dom-nontso"),
]


def _traced(victim, scheme, secret):
    # trace=True keeps the legacy core.trace list AND installs a
    # structured tracer, so both row sources exist for the same run.
    return run_victim_trial(
        victim_by_name(victim), scheme, secret, trace=True
    )


@pytest.mark.parametrize("victim,scheme", SCENARIOS)
@pytest.mark.parametrize("secret", (0, 1))
def test_event_rows_match_legacy_rows(victim, scheme, secret):
    result = _traced(victim, scheme, secret)
    from_events = rows_from_events(result.events)
    legacy = _rows_from_instrs(result.core.trace)
    assert from_events == legacy


def test_timeline_rows_prefers_tracer_on_core():
    result = _traced("gdnpeu", "dom-nontso", 1)
    assert result.core.tracer is not None
    rows = timeline_rows(result.core)
    assert rows == rows_from_events(result.events)


def test_timeline_rows_accepts_tracer_and_event_iterable():
    tracer = Tracer()
    result = run_victim_trial(
        victim_by_name("gdnpeu"), "dom-nontso", 1, tracer=tracer
    )
    from_tracer = timeline_rows(tracer)
    from_list = timeline_rows(list(tracer.events))
    assert from_tracer == from_list == rows_from_events(result.events)


def test_name_filter_applies_to_event_rows():
    result = _traced("gdnpeu", "dom-nontso", 1)
    rows = timeline_rows(result.core, names=["gadget"])
    assert rows
    assert all(r.name.startswith("gadget") for r in rows)


def test_render_from_event_rows():
    result = _traced("gdnpeu", "dom-nontso", 1)
    text = render_timeline(timeline_rows(result.core), title="fig3")
    assert "fig3" in text
    assert "gadget0" in text
    assert "x" in text  # the squashed transient gadget


def test_squashed_rows_require_dispatch():
    # Fetch-queue squashes never reached the ROB and must not appear,
    # matching the legacy core.trace population.
    result = _traced("gdnpeu", "dom-nontso", 1)
    rows = rows_from_events(result.events)
    for row in rows:
        if row.squashed:
            assert row.dispatch is not None
