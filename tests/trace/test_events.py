"""Unit tests for the event model and the tracer bus."""

from __future__ import annotations

import pytest

from repro.trace import EventKind, TraceEvent, Tracer
from repro.trace.events import (
    coerce_kinds,
    event_from_json,
    event_to_json,
    make_args,
)


class TestTraceEvent:
    def test_args_canonical_order(self):
        a = TraceEvent(5, EventKind.ISSUE, args=make_args({"b": 1, "a": 2}))
        b = TraceEvent(5, EventKind.ISSUE, args=make_args({"a": 2, "b": 1}))
        assert a == b
        assert hash(a) == hash(b)

    def test_arg_lookup(self):
        ev = TraceEvent(1, EventKind.CACHE_HIT, args=make_args({"line": 64}))
        assert ev.arg("line") == 64
        assert ev.arg("missing") is None
        assert ev.arg("missing", 7) == 7
        assert ev.argdict == {"line": 64}

    def test_describe_mentions_fields(self):
        ev = TraceEvent(
            42, EventKind.SQUASH, core=0, seq=9, instr="gadget0",
            args=make_args({"redirect": 12}),
        )
        text = ev.describe()
        assert "cycle 42" in text
        assert "squash" in text
        assert "#9" in text
        assert "gadget0" in text
        assert "redirect" in text

    def test_json_round_trip(self):
        ev = TraceEvent(
            7, EventKind.MSHR_ALLOC, core=2, seq=3, instr="ld",
            args=make_args({"line": 128, "coalesced": False, "occ": 1}),
        )
        assert event_from_json(event_to_json(ev)) == ev

    def test_json_omits_empty_fields(self):
        data = event_to_json(TraceEvent(3, EventKind.FETCH))
        assert data == {"t": 3, "k": "fetch"}

    def test_from_json_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            event_from_json({"t": 0, "k": "not-a-kind"})


class TestCoerceKinds:
    def test_accepts_members_and_names(self):
        got = coerce_kinds(["issue", EventKind.COMMIT])
        assert got == frozenset({EventKind.ISSUE, EventKind.COMMIT})

    def test_none_passthrough(self):
        assert coerce_kinds(None) is None

    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            coerce_kinds(["bogus"])


class TestTracer:
    def test_emit_uses_context_defaults(self):
        t = Tracer()
        t.cycle = 11
        t.core = 1
        t.emit(EventKind.CACHE_MISS, line=64)
        (ev,) = t.events
        assert ev.cycle == 11
        assert ev.core == 1
        assert ev.arg("line") == 64

    def test_explicit_fields_override_context(self):
        t = Tracer()
        t.cycle = 11
        t.emit(EventKind.COMMIT, cycle=99, core=2, seq=5, instr="x")
        assert t.events[0].cycle == 99
        assert t.events[0].core == 2

    def test_kind_filter_drops_at_emit(self):
        t = Tracer(kinds=[EventKind.COMMIT])
        t.emit(EventKind.FETCH, seq=1)
        t.emit(EventKind.COMMIT, seq=1)
        assert [e.kind for e in t.events] == [EventKind.COMMIT]

    def test_sink_sees_kept_events(self):
        seen = []
        t = Tracer(kinds=["commit"], sink=seen.append)
        t.emit(EventKind.FETCH, seq=1)
        t.emit(EventKind.COMMIT, seq=1)
        assert seen == t.events

    def test_filtered_view(self):
        t = Tracer()
        t.emit(EventKind.ISSUE, cycle=1, seq=1, instr="a")
        t.emit(EventKind.ISSUE, cycle=2, seq=2, instr="b")
        t.emit(EventKind.COMMIT, cycle=3, seq=1, instr="a")
        assert len(t.filtered(kinds=["issue"])) == 2
        assert len(t.filtered(instr="a")) == 2
        assert len(t.filtered(seq=2)) == 1
        assert len(t.filtered(kinds=["issue"], instr="a")) == 1

    def test_clear_and_len(self):
        t = Tracer()
        t.emit(EventKind.FETCH)
        assert len(t) == 1
        t.clear()
        assert len(t) == 0
        assert list(t) == []
