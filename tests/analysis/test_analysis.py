"""Tests for histograms, timelines, and report tables."""

import pytest

from repro.analysis import (
    Histogram,
    ascii_histogram,
    format_table,
    render_timeline,
    timeline_rows,
)
from repro.isa import ProgramBuilder
from repro.memory.hierarchy import CacheHierarchy
from repro.pipeline import Core

from tests.conftest import small_hierarchy_config


class TestHistogram:
    def test_stats(self):
        h = Histogram()
        h.extend([10, 12, 14])
        assert h.count == 3
        assert h.mean == 12
        assert h.stdev == pytest.approx(2.0)

    def test_percentile(self):
        h = Histogram(samples=list(range(100)))
        assert h.percentile(50) == 50
        assert h.percentile(99) == 99

    def test_percentile_empty_raises(self):
        with pytest.raises(ValueError):
            Histogram().percentile(50)

    def test_bins(self):
        h = Histogram(samples=[0, 1, 5, 6, 6])
        bins = dict(h.bins(5, 0, 10))
        assert bins[0] == 2
        assert bins[5] == 3

    def test_ascii_render(self):
        a = Histogram(samples=[10] * 5 + [12] * 2)
        b = Histogram(samples=[30] * 4)
        text = ascii_histogram({"base": a, "interf": b}, bin_width=4, title="T")
        assert "T" in text
        assert "base" in text and "interf" in text
        assert "#" in text and "*" in text

    def test_ascii_empty(self):
        text = ascii_histogram({"x": Histogram()}, title="none")
        assert "no samples" in text


class TestTimeline:
    def make_traced_core(self):
        b = ProgramBuilder()
        b.imm("a", 1, name="alpha")
        b.addi("b", "a", 2, name="beta")
        b.load_addr("c", 0x9000, name="gamma")
        core = Core(
            0, b.build(), CacheHierarchy(1, small_hierarchy_config()), trace=True
        )
        core.run(max_cycles=50_000)
        return core

    def test_rows_extracted_in_order(self):
        core = self.make_traced_core()
        rows = timeline_rows(core)
        assert [r.name for r in rows][:3] == ["alpha", "beta", "gamma"]
        for row in rows:
            if row.issue is not None:
                assert row.fetch <= row.issue

    def test_name_filter(self):
        core = self.make_traced_core()
        rows = timeline_rows(core, names=["beta"])
        assert [r.name for r in rows] == ["beta"]

    def test_render_contains_markers(self):
        core = self.make_traced_core()
        text = render_timeline(timeline_rows(core), title="demo")
        assert "demo" in text
        assert "alpha" in text
        assert "I" in text and "C" in text

    def test_render_empty(self):
        assert "(no events)" in render_timeline([], title="x")


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ["name", "value"],
            [["a", 1], ["long-name", 123]],
            title="My Table",
            align_right=[1],
        )
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert lines[-1].endswith("123")

    def test_column_sizing(self):
        text = format_table(["x"], [["wiiiiiide"]])
        assert "wiiiiiide" in text
