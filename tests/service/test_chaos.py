"""The chaos differential: service under fire == undisturbed run.

This is the acceptance property of the whole service tier, exercised
with real processes: worker SIGKILLs, a daemon SIGKILL + restart
(orphan adoption), injected I/O faults mid-journal-append and
mid-cache-publish, a torn cache entry, and skewed worker clocks — and
the merged result must still be bit-identical with zero lost and zero
duplicated trials.
"""

import os

import pytest

from repro.runner import faults
from repro.runner.spec import expand_grid
from repro.service.chaos import (
    KILL_DAEMON,
    ChaosAction,
    ChaosSchedule,
    chaos_differential,
)

pytestmark = pytest.mark.slow


@pytest.fixture(autouse=True)
def _clean_env():
    faults.clear_fs_plan()
    yield
    faults.clear_fs_plan()
    os.environ.pop("REPRO_CLOCK_SKEW", None)


def test_schedule_generation_is_deterministic():
    a = ChaosSchedule.generate(42)
    b = ChaosSchedule.generate(42)
    assert a == b
    assert a != ChaosSchedule.generate(43)
    assert all(a.actions[i].at <= a.actions[i + 1].at
               for i in range(len(a.actions) - 1))


def test_schedule_io_kills_always_leave_progress():
    """The convergence argument needs ``after >= 1`` on every injected
    I/O kill: each killed round must journal at least one record."""
    for seed in range(30):
        plan = ChaosSchedule.generate(seed).fs_plan
        assert plan is not None
        for fault in plan.faults:
            if fault.kind == faults.FS_KILL:
                assert fault.after >= 1


def test_chaos_differential_converges_bit_identically(tmp_path):
    specs = expand_grid(["gdnpeu", "gdmshr"], ["dom-nontso", "fence-spectre"])
    report = chaos_differential(specs, tmp_path, seed=7, timeout=240.0)
    assert report["lost"] == []
    assert report["duplicated"] == []
    assert report["mismatches"] == []
    assert report["identical"], report
    assert report["n_trials"] == len(specs)


def test_chaos_differential_with_daemon_kill_and_skew(tmp_path):
    """Force the interesting pair explicitly rather than relying on the
    seed: a daemon SIGKILL early in the run (adoption path) plus a
    fast worker clock (heartbeat clamping path)."""
    specs = expand_grid(["gdnpeu"], ["dom-nontso", "fence-spectre"], (0, 1))
    schedule = ChaosSchedule(
        seed=0,
        actions=(ChaosAction(KILL_DAEMON, 0.05),),
        fs_plan=None,
        worker_skew=5.0,
    )
    # One worker, one-spec chunks: the run must outlive the kill offset
    # so the second incarnation deterministically exists.
    report = chaos_differential(
        specs, tmp_path, schedule=schedule, timeout=240.0,
        workers=1, chunksize=1, lease_ttl=1.0,
    )
    assert report["identical"], report
    assert report["daemon_incarnations"] >= 2
