"""Spec/result JSON codecs: the digest must survive the round trip."""

import json

import pytest

from repro.runner.runner import run_trial_outcome
from repro.runner.spec import SweepResult, TrialSpec, expand_grid, trial_seed
from repro.service.codec import (
    result_signature,
    spec_from_json,
    spec_to_json,
    specs_from_json,
    specs_to_json,
    sweep_result_from_json,
    sweep_result_to_json,
)
from tests.conftest import small_hierarchy_config


def _rich_spec() -> TrialSpec:
    """A spec exercising every field type the codec must preserve."""
    return TrialSpec(
        victim="gdnpeu",
        scheme="dom-nontso",
        secret=1,
        victim_kwargs=(("depth", 3), ("mode", "fast"), ("ratios", (1, 2))),
        seed=trial_seed("gdnpeu", "dom-nontso", 1),
        reference_accesses=((0, 100), (1, 228)),
        noise_rate=0.25,
        noise_pool=(4096, 8192),
        extra_lines=(12345,),
        max_cycles=5000,
        hierarchy_config=small_hierarchy_config(),
        sanitize=True,
        collect_metrics=True,
    )


def test_round_trip_preserves_digest():
    spec = _rich_spec()
    decoded = spec_from_json(spec_to_json(spec))
    assert decoded == spec
    assert decoded.digest() == spec.digest()


def test_round_trip_survives_json_serialization():
    """The encoded form must survive an actual JSON dump/load (tuples
    would silently become lists without the tagged encoding)."""
    spec = _rich_spec()
    wire = json.loads(json.dumps(spec_to_json(spec)))
    assert spec_from_json(wire).digest() == spec.digest()


def test_grid_round_trip():
    specs = expand_grid(["gdnpeu", "gdmshr"], ["unsafe", "dom-nontso"])
    decoded = specs_from_json(json.loads(json.dumps(specs_to_json(specs))))
    assert [s.digest() for s in decoded] == [s.digest() for s in specs]


def test_unknown_tagged_value_rejected():
    payload = spec_to_json(_rich_spec())
    payload["victim_kwargs"] = [["bad", {"$frozenset": [1]}]]
    with pytest.raises(ValueError):
        spec_from_json(payload)


def test_sweep_result_round_trip():
    specs = expand_grid(["gdnpeu"], ["dom-nontso"], (0, 1))
    outcomes = [run_trial_outcome(s, attempt=0) for s in specs]
    result = SweepResult(
        summaries=[o.summary for o in outcomes if o.summary is not None],
        elapsed=1.5,
        workers=2,
        failures=[o for o in outcomes if not o.ok],
        outcomes=outcomes,
        cache_stats={"hits": 1, "misses": 1},
    )
    decoded = sweep_result_from_json(
        json.loads(json.dumps(sweep_result_to_json(result)))
    )
    assert result_signature(decoded.outcomes) == result_signature(outcomes)
    assert decoded.cache_stats == result.cache_stats
    assert decoded.workers == 2
    assert [s.victim for s in decoded.summaries] == [
        s.victim for s in result.summaries
    ]


def test_result_signature_ignores_attempts():
    specs = expand_grid(["gdnpeu"], ["dom-nontso"], (0,))
    first = run_trial_outcome(specs[0], attempt=0)
    retried = run_trial_outcome(specs[0], attempt=2)
    assert first.attempts != retried.attempts
    assert result_signature([first]) == result_signature([retried])
