"""Lease table: grants, heartbeats, expiry, clock skew, crash replay."""

from repro.service.lease import LeaseTable


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def _table(tmp_path, clock, **kwargs):
    return LeaseTable(
        tmp_path / "leases.jsonl", ttl=5.0, skew_tolerance=2.0,
        clock=clock, **kwargs
    )


def test_grant_heartbeat_release_lifecycle(tmp_path):
    clock = FakeClock()
    table = _table(tmp_path, clock)
    table.grant("job/1", "w0", pid=123)
    assert "job/1" in table.live()
    assert not table.expired()
    clock.advance(4.0)
    table.heartbeat("job/1", "w0", pid=123)
    table.poll()
    clock.advance(4.0)  # 8s since grant, 4s since heartbeat: still live
    assert not table.expired()
    table.release("job/1", "w0")
    table.poll()
    assert table.released("job/1")
    assert table.live() == {}


def test_expiry_without_heartbeat(tmp_path):
    clock = FakeClock()
    table = _table(tmp_path, clock)
    table.grant("job/1", "w0")
    clock.advance(5.5)
    table.poll()
    assert [lease.lease_id for lease in table.expired()] == ["job/1"]
    table.reclaim("job/1")
    assert table.live() == {}


def test_fast_clock_cannot_extend_lease_past_tolerance(tmp_path):
    """A worker whose clock runs far ahead must not pin its lease into
    the future: heartbeat timestamps clamp to now + skew_tolerance."""
    supervisor_clock = FakeClock()
    table = _table(tmp_path, supervisor_clock)
    table.grant("job/1", "w0")
    # Worker heartbeats through its own (fast-by-60s) clock instance.
    worker_clock = FakeClock(supervisor_clock.now + 60.0)
    worker_table = _table(tmp_path, worker_clock)
    worker_table.heartbeat("job/1", "w0")
    table.poll()
    # Effective heartbeat ts is clamped to now+2, so the lease expires
    # at now+2+ttl, not now+60+ttl.
    supervisor_clock.advance(8.0)
    table.poll()
    assert [lease.lease_id for lease in table.expired()] == ["job/1"]


def test_slow_clock_expires_early_which_is_safe(tmp_path):
    supervisor_clock = FakeClock()
    table = _table(tmp_path, supervisor_clock)
    table.grant("job/1", "w0")
    worker_clock = FakeClock(supervisor_clock.now - 30.0)
    worker_table = _table(tmp_path, worker_clock)
    supervisor_clock.advance(4.0)
    worker_table.heartbeat("job/1", "w0")
    table.poll()
    supervisor_clock.advance(4.0)
    table.poll()
    # The stale-looking heartbeat did not extend the lease; it expired
    # on the original grant deadline.  Early expiry only re-runs work.
    assert [lease.lease_id for lease in table.expired()] == ["job/1"]


def test_replay_adopts_live_leases(tmp_path):
    clock = FakeClock()
    table = _table(tmp_path, clock)
    table.grant("job/1", "w0", pid=42)
    table.grant("job/2", "w1")
    table.release("job/2", "w1")
    # A fresh table (supervisor restart) replays the journal.
    adopted = _table(tmp_path, clock)
    assert set(adopted.live()) == {"job/1"}
    assert adopted.live()["job/1"].pid == 42


def test_heartbeat_after_reclaim_is_ignored(tmp_path):
    clock = FakeClock()
    table = _table(tmp_path, clock)
    table.grant("job/1", "w0")
    table.reclaim("job/1")
    table.heartbeat("job/1", "w0")  # zombie worker still appending
    table.poll()
    assert table.live() == {}


def test_incremental_poll_only_reads_new_bytes(tmp_path):
    clock = FakeClock()
    table = _table(tmp_path, clock)
    table.grant("job/1", "w0")
    table.poll()  # consumes the grant record
    offset_after_grant = table._offset
    table.poll()  # nothing new: offset must not move
    assert table._offset == offset_after_grant
    table.heartbeat("job/1", "w0")
    table.poll()
    assert table._offset > offset_after_grant
