"""HTTP/SSE front end over a live service directory."""

import json
import urllib.error
import urllib.request

import pytest

from repro.runner.spec import expand_grid
from repro.service.codec import result_signature, specs_to_json, sweep_result_from_json
from repro.service.httpd import start_http_server
from repro.service.supervisor import SweepSupervisor

SPECS = expand_grid(["gdnpeu"], ["unsafe"], (0, 1))


@pytest.fixture()
def server(tmp_path):
    srv = start_http_server(tmp_path, quotas={"capped": 1})
    yield srv
    srv.shutdown()


def _url(server, path):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def _get(server, path):
    with urllib.request.urlopen(_url(server, path), timeout=30) as resp:
        return resp.status, json.loads(resp.read())


def _post(server, path, payload=None):
    request = urllib.request.Request(
        _url(server, path),
        data=json.dumps(payload or {}).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as resp:
        return resp.status, json.loads(resp.read())


def _submit(server, specs=SPECS, **extra):
    status, body = _post(
        server, "/v1/jobs", {"specs": specs_to_json(specs), **extra}
    )
    assert status == 201
    return body["job_id"]


def test_healthz(server):
    assert _get(server, "/v1/healthz") == (200, {"ok": True})


def test_submit_status_result_round_trip(server, tmp_path):
    job_id = _submit(server, priority=2)
    status, body = _get(server, "/v1/jobs")
    assert body["jobs"][job_id]["status"] == "queued"
    assert body["jobs"][job_id]["priority"] == 2

    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(server, f"/v1/jobs/{job_id}/result")
    assert excinfo.value.code == 404  # not published yet

    SweepSupervisor(tmp_path, workers=2, chunksize=2,
                    poll_interval=0.01).run_until_idle(timeout=120)

    status, progress = _get(server, f"/v1/jobs/{job_id}")
    assert progress["status"] == "done"
    assert progress["finished"] == len(SPECS)

    status, payload = _get(server, f"/v1/jobs/{job_id}/result")
    result = sweep_result_from_json(payload)
    assert len(result.outcomes) == len(SPECS)
    assert not result.failures


def test_sse_stream_ends_with_job_done(server, tmp_path):
    job_id = _submit(server)
    SweepSupervisor(tmp_path, workers=2, chunksize=2,
                    poll_interval=0.01).run_until_idle(timeout=120)
    with urllib.request.urlopen(
        _url(server, f"/v1/jobs/{job_id}/stream"), timeout=30
    ) as resp:
        assert resp.headers["Content-Type"] == "text/event-stream"
        raw = resp.read().decode()
    frames = [frame for frame in raw.split("\n\n") if frame.strip()]
    events = [frame.split("\n", 1)[0] for frame in frames]
    assert events.count("event: trial") == len(SPECS)
    assert events[-1] == "event: job-done"
    # Each data line is valid JSON carrying the delta.
    payload = json.loads(frames[0].split("data: ", 1)[1])
    assert payload["event"] == "trial"


def test_quota_returns_429(server):
    _submit(server, tenant="capped")
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _submit(server, tenant="capped")
    assert excinfo.value.code == 429


def test_malformed_submit_returns_400(server):
    for payload in ({}, {"specs": "nope"}, {"specs": []},
                    {"specs": [{"victim": "x"}]}):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server, "/v1/jobs", payload)
        assert excinfo.value.code == 400, payload


def test_cancel_endpoint(server):
    job_id = _submit(server)
    status, body = _post(server, f"/v1/jobs/{job_id}/cancel")
    assert (status, body) == (200, {"cancelled": job_id})
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(server, f"/v1/jobs/{job_id}/cancel")  # already terminal
    assert excinfo.value.code == 409


def test_unknown_routes_and_jobs_return_404(server):
    for path in ("/nope", "/v1/jobs/zzzz", "/v1/jobs/" + "0" * 16):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server, path)
        assert excinfo.value.code == 404, path


def test_http_result_signature_matches_in_process_run(server, tmp_path):
    """The service's HTTP-published result is the same result an
    in-process run produces (transport adds nothing, loses nothing)."""
    from repro.runner.runner import run_trial_outcome

    job_id = _submit(server)
    SweepSupervisor(tmp_path, workers=1, chunksize=4,
                    poll_interval=0.01).run_until_idle(timeout=120)
    _, payload = _get(server, f"/v1/jobs/{job_id}/result")
    decoded = sweep_result_from_json(payload)
    clean = [run_trial_outcome(s, attempt=0) for s in SPECS]
    assert result_signature(decoded.outcomes) == result_signature(clean)
