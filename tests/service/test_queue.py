"""Durable job queue: persistence, priorities, quotas, torn journals."""

import os

import pytest

from repro.runner import faults
from repro.runner.spec import expand_grid
from repro.service.queue import (
    DurableJobQueue,
    JobStatus,
    QuotaExceeded,
)


@pytest.fixture(autouse=True)
def _no_leftover_fs_plan():
    faults.clear_fs_plan()
    yield
    faults.clear_fs_plan()


def _specs(n_schemes=1):
    return expand_grid(
        ["gdnpeu"], ["unsafe", "dom-nontso"][:n_schemes], (0, 1)
    )


def test_submit_persists_specs_and_state(tmp_path):
    queue = DurableJobQueue(tmp_path)
    specs = _specs()
    job_id = queue.submit(specs, priority=3, tenant="team-a")
    view = queue.jobs()[job_id]
    assert view.status is JobStatus.QUEUED
    assert view.priority == 3
    assert view.tenant == "team-a"
    assert view.n_specs == len(specs)
    loaded = queue.load_specs(job_id)
    assert [s.digest() for s in loaded] == [s.digest() for s in specs]


def test_state_survives_reopen(tmp_path):
    queue = DurableJobQueue(tmp_path)
    job_id = queue.submit(_specs())
    queue.claim_next()
    reopened = DurableJobQueue(tmp_path)
    assert reopened.jobs()[job_id].status is JobStatus.RUNNING
    reopened.complete(job_id)
    assert DurableJobQueue(tmp_path).jobs()[job_id].status is JobStatus.DONE


def test_empty_submit_rejected(tmp_path):
    with pytest.raises(ValueError):
        DurableJobQueue(tmp_path).submit([])


def test_priority_then_fifo_claim_order(tmp_path):
    queue = DurableJobQueue(tmp_path)
    low_first = queue.submit(_specs(), priority=0)
    high = queue.submit(_specs(2), priority=5)
    low_second = queue.submit(_specs(), priority=0, tenant="b")
    claimed = [queue.claim_next().job_id for _ in range(3)]
    assert claimed == [high, low_first, low_second]
    assert queue.claim_next() is None


def test_per_tenant_quota(tmp_path):
    queue = DurableJobQueue(tmp_path, quotas={"a": 2}, default_quota=1)
    queue.submit(_specs(), tenant="a")
    queue.submit(_specs(), tenant="a")
    with pytest.raises(QuotaExceeded):
        queue.submit(_specs(), tenant="a")
    queue.submit(_specs(), tenant="b")
    with pytest.raises(QuotaExceeded):
        queue.submit(_specs(), tenant="b")


def test_quota_frees_on_terminal_states(tmp_path):
    queue = DurableJobQueue(tmp_path, default_quota=1)
    job_id = queue.submit(_specs())
    with pytest.raises(QuotaExceeded):
        queue.submit(_specs(2))
    queue.claim_next()
    queue.complete(job_id)
    second = queue.submit(_specs(2))  # done jobs do not count
    queue.cancel(second)
    queue.submit(_specs())  # cancelled jobs do not count either


def test_cancel_semantics(tmp_path):
    queue = DurableJobQueue(tmp_path)
    job_id = queue.submit(_specs())
    assert queue.cancel(job_id) is True
    assert queue.jobs()[job_id].status is JobStatus.CANCELLED
    assert queue.cancel(job_id) is False  # already terminal
    assert queue.cancel("0" * 16) is False  # unknown


def test_stale_events_on_terminal_jobs_ignored(tmp_path):
    """A crashed supervisor may replay a duplicate transition; the fold
    must keep terminal states terminal."""
    queue = DurableJobQueue(tmp_path)
    job_id = queue.submit(_specs())
    queue.claim_next()
    queue.complete(job_id)
    queue.complete(job_id)  # idempotent retry after a deferred finalize
    queue.cancel(job_id)
    assert queue.jobs()[job_id].status is JobStatus.DONE


def test_torn_queue_append_loses_only_that_event(tmp_path):
    """A torn submit event must not corrupt the following append."""
    queue = DurableJobQueue(tmp_path)
    first = queue.submit(_specs())
    faults.install_fs_plan(
        faults.FSFaultPlan(
            faults=(
                faults.FSFaultSpec(
                    faults.FS_TORN, op=faults.OP_QUEUE_APPEND
                ),
            )
        )
    )
    torn = queue.submit(_specs(2))  # event append torn mid-record
    faults.clear_fs_plan()
    third = queue.submit(_specs(2), tenant="c")
    views = DurableJobQueue(tmp_path).jobs()
    assert first in views and third in views
    # The torn job was never acknowledged durably: replay drops it, and
    # its orphaned spec dir is invisible to scheduling.
    assert torn not in views
    assert DurableJobQueue(tmp_path).claim_next().job_id == first


def test_enospc_surfaces_to_submitter(tmp_path):
    queue = DurableJobQueue(tmp_path)
    faults.install_fs_plan(
        faults.FSFaultPlan(
            faults=(
                faults.FSFaultSpec(
                    faults.FS_ENOSPC, op=faults.OP_QUEUE_APPEND
                ),
            )
        )
    )
    with pytest.raises(OSError) as excinfo:
        queue.submit(_specs())
    assert excinfo.value.errno == 28  # ENOSPC
    faults.clear_fs_plan()
    job_id = queue.submit(_specs())
    assert queue.jobs()[job_id].status is JobStatus.QUEUED


def test_job_dirs_layout(tmp_path):
    queue = DurableJobQueue(tmp_path)
    job_id = queue.submit(_specs())
    assert os.path.exists(queue.specs_path(job_id))
    assert queue.trial_journal_path(job_id).endswith(
        os.path.join(job_id, "journal.jsonl")
    )
