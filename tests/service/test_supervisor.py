"""Supervisor: lease recovery, retry exhaustion, adoption, streaming.

These tests run real worker processes (multiprocessing) over small
grids; fault injection goes through the ``repro.runner.faults`` I/O
plan, shipped to workers via the environment.
"""

import os

import pytest

from repro.runner import faults
from repro.runner.runner import run_trial_outcome
from repro.runner.spec import TrialStatus, expand_grid
from repro.service import ServiceClient, SweepSupervisor
from repro.service.codec import result_signature

GRID = expand_grid(["gdnpeu"], ["unsafe", "dom-nontso"], (0, 1))

DRAIN_TIMEOUT = 120.0


@pytest.fixture(autouse=True)
def _no_leftover_fs_plan():
    faults.clear_fs_plan()
    yield
    faults.clear_fs_plan()
    os.environ.pop(faults.FS_FAULT_PLAN_ENV, None)


def _clean_signature(specs):
    return result_signature([run_trial_outcome(s, attempt=0) for s in specs])


def _supervisor(tmp_path, **kwargs):
    defaults = dict(
        workers=2, chunksize=2, poll_interval=0.01, lease_ttl=2.0
    )
    defaults.update(kwargs)
    return SweepSupervisor(tmp_path, **defaults)


def test_drains_to_bit_identical_result(tmp_path):
    client = ServiceClient(tmp_path)
    job_id = client.submit(GRID)
    _supervisor(tmp_path).run_until_idle(timeout=DRAIN_TIMEOUT)
    result = client.result(job_id)
    assert result is not None
    assert result_signature(result.outcomes) == _clean_signature(GRID)
    assert client.status(job_id).status.value == "done"


def test_recovers_from_worker_killed_mid_journal_append(tmp_path):
    """A worker SIGKILLed mid-append (torn journal line) loses only the
    in-flight trial; the supervisor reclaims and converges."""
    client = ServiceClient(tmp_path)
    job_id = client.submit(GRID)
    # Every first-incarnation worker dies half-way through its second
    # journal append (the env ships the plan to worker processes).
    os.environ[faults.FS_FAULT_PLAN_ENV] = faults.FSFaultPlan(
        faults=(
            faults.FSFaultSpec(
                faults.FS_KILL, op=faults.OP_JOURNAL_APPEND, after=1
            ),
        )
    ).to_json()
    supervisor = _supervisor(tmp_path, lease_ttl=1.0)
    try:
        supervisor.run_until_idle(timeout=DRAIN_TIMEOUT)
    finally:
        os.environ.pop(faults.FS_FAULT_PLAN_ENV, None)
    result = client.result(job_id)
    assert result_signature(result.outcomes) == _clean_signature(GRID)
    # The fault actually fired: some trial needed more than one attempt.
    assert max(o.attempts for o in result.outcomes) > 1


def test_retry_exhaustion_reports_worker_lost(tmp_path):
    """A chunk that dies on *every* attempt must surface as structured
    worker-lost failures, not loop forever."""
    client = ServiceClient(tmp_path)
    specs = expand_grid(["gdnpeu"], ["unsafe"], (0,))
    job_id = client.submit(specs)
    # after=0: the very first journal append of every worker dies, so
    # no attempt can ever journal its outcome.
    os.environ[faults.FS_FAULT_PLAN_ENV] = faults.FSFaultPlan(
        faults=(
            faults.FSFaultSpec(
                faults.FS_KILL, op=faults.OP_JOURNAL_APPEND, times=10**6
            ),
        )
    ).to_json()
    supervisor = _supervisor(
        tmp_path, chunksize=1, lease_ttl=1.0, max_retries=1
    )
    try:
        supervisor.run_until_idle(timeout=DRAIN_TIMEOUT)
    finally:
        os.environ.pop(faults.FS_FAULT_PLAN_ENV, None)
    result = client.result(job_id)
    assert [o.status for o in result.outcomes] == [TrialStatus.WORKER_LOST]
    assert result.outcomes[0].error_type == "RetriesExhausted"
    assert client.status(job_id).status.value == "done"


def test_fresh_supervisor_adopts_abandoned_job(tmp_path):
    """Supervisor 'crash': the first instance claims the job and spawns
    workers, then is abandoned.  A second instance on the same
    directory must adopt the RUNNING job — waiting out the foreign
    leases rather than killing the orphans — and finish it."""
    client = ServiceClient(tmp_path)
    job_id = client.submit(GRID)
    first = _supervisor(tmp_path, lease_ttl=1.5)
    first.step()  # claims the job and spawns its first chunks
    assert client.status(job_id).status.value == "running"
    # No shutdown(): the orphan workers keep running, as after SIGKILL
    # of the daemon (their leases stay live in the journal).
    second = _supervisor(tmp_path, lease_ttl=1.5)
    second.run_until_idle(timeout=DRAIN_TIMEOUT)
    result = client.result(job_id)
    assert result_signature(result.outcomes) == _clean_signature(GRID)
    # Hygiene: reap the abandoned instance's processes.
    for chunk in first._running:
        chunk.process.join(timeout=10.0)
    first.shutdown()


def test_cancellation_mid_run(tmp_path):
    client = ServiceClient(tmp_path)
    job_id = client.submit(GRID)
    supervisor = _supervisor(tmp_path)
    supervisor.step()
    assert client.cancel(job_id)
    supervisor.run_until_idle(timeout=DRAIN_TIMEOUT)
    assert client.status(job_id).status.value == "cancelled"
    assert client.result(job_id) is None
    records, _ = client.deltas(job_id)
    assert any(r.get("event") == "job-cancelled" for r in records)
    supervisor.shutdown()


def test_stream_carries_deltas_and_terminal_event(tmp_path):
    client = ServiceClient(tmp_path)
    job_id = client.submit(GRID)
    _supervisor(tmp_path).run_until_idle(timeout=DRAIN_TIMEOUT)
    records, _ = client.deltas(job_id)
    trials = [r for r in records if r.get("event") == "trial"]
    assert {r["digest"] for r in trials} == {s.digest() for s in GRID}
    assert records[-1]["event"] == "job-done"
    assert records[-1]["n_trials"] == len(GRID)


def test_two_jobs_respect_priority(tmp_path):
    client = ServiceClient(tmp_path)
    low = client.submit(expand_grid(["gdnpeu"], ["unsafe"], (0,)))
    high = client.submit(
        expand_grid(["gdnpeu"], ["dom-nontso"], (0,)), priority=9
    )
    supervisor = _supervisor(tmp_path, max_active_jobs=1, workers=1)
    supervisor.step()
    # With one active-job slot, the high-priority job is claimed first.
    assert client.status(high).status.value == "running"
    assert client.status(low).status.value == "queued"
    supervisor.run_until_idle(timeout=DRAIN_TIMEOUT)
    assert client.status(low).status.value == "done"
    assert client.status(high).status.value == "done"


def test_cache_shared_across_jobs(tmp_path):
    """Two jobs over the same specs: the second is served from the
    shared durable cache (its journal outcomes preserve attempts=1 and
    identical summaries)."""
    client = ServiceClient(tmp_path)
    specs = expand_grid(["gdnpeu"], ["unsafe"], (0, 1))
    first = client.submit(specs)
    supervisor = _supervisor(tmp_path)
    supervisor.run_until_idle(timeout=DRAIN_TIMEOUT)
    second = client.submit(specs)
    supervisor.run_until_idle(timeout=DRAIN_TIMEOUT)
    sig_first = result_signature(client.result(first).outcomes)
    sig_second = result_signature(client.result(second).outcomes)
    assert sig_first == sig_second
    cache_dir = os.path.join(str(tmp_path), "cache")
    assert os.path.isdir(cache_dir)
    published = [
        name
        for _, _, files in os.walk(cache_dir)
        for name in files
        if name.endswith(".json")
    ]
    assert len(published) == len(specs)
