"""WAL helpers and streaming partial results."""

import json
import threading

from repro.runner.runner import run_trial_outcome
from repro.runner.spec import expand_grid
from repro.service import stream, wal


def _wal(tmp_path):
    return str(tmp_path / "log.jsonl")


# ---------------------------------------------------------------------
# wal primitives
# ---------------------------------------------------------------------
def test_append_and_replay(tmp_path):
    path = _wal(tmp_path)
    for i in range(3):
        wal.append_record(path, {"i": i}, op="stream.append")
    assert [r["i"] for r in wal.replay(path)] == [0, 1, 2]


def test_incremental_read(tmp_path):
    path = _wal(tmp_path)
    wal.append_record(path, {"i": 0}, op="stream.append")
    records, offset = wal.read_records(path)
    assert [r["i"] for r in records] == [0]
    records, offset = wal.read_records(path, offset)
    assert records == []
    wal.append_record(path, {"i": 1}, op="stream.append")
    records, _ = wal.read_records(path, offset)
    assert [r["i"] for r in records] == [1]


def test_torn_record_does_not_eat_the_next_one(tmp_path):
    """The leading-separator idiom: a record torn mid-line must not
    merge with (and destroy) the record appended after it."""
    path = _wal(tmp_path)
    wal.append_record(path, {"i": 0}, op="stream.append")
    with open(path, "ab") as fh:  # simulate a writer killed mid-append
        fh.write(b'\n{"i": 1, "torn')
    wal.append_record(path, {"i": 2}, op="stream.append")
    assert [r["i"] for r in wal.replay(path)] == [0, 2]


def test_partial_final_line_left_unconsumed(tmp_path):
    path = _wal(tmp_path)
    wal.append_record(path, {"i": 0}, op="stream.append")
    with open(path, "ab") as fh:
        fh.write(b'\n{"i": 1')  # still being written, no newline yet
    records, offset = wal.read_records(path)
    assert [r["i"] for r in records] == [0]
    with open(path, "ab") as fh:
        fh.write(b"}\n")  # the writer finishes
    records, _ = wal.read_records(path, offset)
    assert [r["i"] for r in records] == [1]


def test_atomic_write_and_load(tmp_path):
    path = str(tmp_path / "doc.json")
    wal.atomic_write_json(path, {"x": [1, 2]})
    assert wal.load_json(path) == {"x": [1, 2]}
    with open(path, "w") as fh:
        fh.write('{"x": [1,')  # torn document
    assert wal.load_json(path) is None
    assert wal.load_json(str(tmp_path / "absent.json")) is None


# ---------------------------------------------------------------------
# stream layer
# ---------------------------------------------------------------------
def test_outcome_deltas_round_trip(tmp_path):
    path = _wal(tmp_path)
    spec = expand_grid(["gdnpeu"], ["unsafe"], (0,))[0]
    outcome = run_trial_outcome(spec, attempt=0)
    stream.append_outcome(path, outcome)
    records, _ = stream.read_events(path)
    assert len(records) == 1
    assert records[0]["event"] == "trial"
    assert records[0]["digest"] == spec.digest()
    assert records[0]["status"] == "ok"


def test_oversize_delta_degrades_to_marker(tmp_path):
    path = _wal(tmp_path)
    stream.append_event(
        path,
        {"event": "trial", "digest": "d" * 16, "blob": "x" * stream.STREAM_BUDGET},
    )
    records, _ = stream.read_events(path)
    assert records == [
        {"event": "oversize", "original_event": "trial", "digest": "d" * 16}
    ]
    # The marker itself respects the budget.
    assert len(json.dumps(records[0])) < stream.STREAM_BUDGET


def test_follow_ends_on_terminal_event(tmp_path):
    path = _wal(tmp_path)
    seen = []

    def producer():
        for i in range(3):
            stream.append_event(path, {"event": "trial", "i": i})
        stream.append_event(path, {"event": "job-done"})

    thread = threading.Thread(target=producer)
    thread.start()
    for record in stream.follow(path, poll_interval=0.005, timeout=10.0):
        seen.append(record["event"])
    thread.join()
    assert seen == ["trial", "trial", "trial", "job-done"]


def test_follow_timeout_and_should_stop(tmp_path):
    path = _wal(tmp_path)
    assert list(stream.follow(path, timeout=0.05, poll_interval=0.01)) == []
    calls = []

    def stop():
        calls.append(1)
        return len(calls) > 2

    records = list(
        stream.follow(path, poll_interval=0.005, should_stop=stop)
    )
    assert records == []


def test_sse_frame_shape(tmp_path):
    frame = stream.sse_frame({"event": "trial", "digest": "abc"})
    assert frame.startswith(b"event: trial\ndata: ")
    assert frame.endswith(b"\n\n")
    payload = json.loads(frame.split(b"data: ", 1)[1].strip())
    assert payload["digest"] == "abc"
