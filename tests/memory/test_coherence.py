"""Tests for the MESI-style coherence layer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory import AccessKind, CacheHierarchy, CoherenceDirectory, CoherenceState

from tests.conftest import small_hierarchy_config

LINE = 0x4_0000


class TestDirectoryStates:
    def test_first_reader_gets_exclusive(self):
        d = CoherenceDirectory(2)
        assert d.on_read(0, LINE) == 0
        assert d.state(0, LINE) is CoherenceState.EXCLUSIVE

    def test_second_reader_shares(self):
        d = CoherenceDirectory(2)
        d.on_read(0, LINE)
        d.on_read(1, LINE)
        assert d.state(0, LINE) is CoherenceState.SHARED
        assert d.state(1, LINE) is CoherenceState.SHARED

    def test_write_modifies_and_invalidates(self):
        d = CoherenceDirectory(3)
        d.on_read(0, LINE)
        d.on_read(1, LINE)
        invalidated, penalty = d.on_write(2, LINE)
        assert sorted(invalidated) == [0, 1]
        assert penalty == 0  # no remote M copy
        assert d.state(2, LINE) is CoherenceState.MODIFIED
        assert d.state(0, LINE) is None

    def test_read_of_remote_modified_pays_writeback(self):
        d = CoherenceDirectory(2, writeback_penalty=30)
        d.on_write(0, LINE)
        penalty = d.on_read(1, LINE)
        assert penalty == 30
        assert d.state(0, LINE) is CoherenceState.SHARED
        assert d.state(1, LINE) is CoherenceState.SHARED

    def test_write_to_remote_modified_pays_writeback(self):
        d = CoherenceDirectory(2, writeback_penalty=30)
        d.on_write(0, LINE)
        invalidated, penalty = d.on_write(1, LINE)
        assert invalidated == [0]
        assert penalty == 30
        assert d.owner(LINE) == 1

    def test_own_rewrite_is_free(self):
        d = CoherenceDirectory(2)
        d.on_write(0, LINE)
        invalidated, penalty = d.on_write(0, LINE)
        assert invalidated == []
        assert penalty == 0

    def test_evict_and_flush(self):
        d = CoherenceDirectory(2)
        d.on_read(0, LINE)
        d.on_read(1, LINE)
        d.on_evict(0, LINE)
        assert d.sharers(LINE) == [1]
        d.on_flush(LINE)
        assert d.sharers(LINE) == []

    @settings(max_examples=50, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["r", "w", "e"]),
                st.integers(0, 2),
                st.integers(0, 3),
            ),
            min_size=1,
            max_size=50,
        )
    )
    def test_mesi_invariant_under_random_traffic(self, ops):
        """M or E always implies a sole sharer."""
        d = CoherenceDirectory(3)
        for op, core, line_idx in ops:
            line = line_idx * 64
            if op == "r":
                d.on_read(core, line)
            elif op == "w":
                d.on_write(core, line)
            else:
                d.on_evict(core, line)
            assert d.invariant_ok(line)


class TestHierarchyIntegration:
    def make(self):
        return CacheHierarchy(2, small_hierarchy_config())

    def test_store_invalidates_remote_copy(self):
        h = self.make()
        h.access(1, LINE)  # core 1 caches the line
        assert h.l1_hit(1, LINE)
        h.write(0, LINE, 5)  # core 0 stores
        assert not h.l1_hit(1, LINE)
        assert h.coherence.owner(LINE) == 0

    def test_remote_modified_read_costs_more(self):
        h = self.make()
        h.write(0, LINE, 5)
        # flush core 1's path is empty; its read pays the writeback
        baseline = CacheHierarchy(2, small_hierarchy_config())
        baseline.write(0, LINE, 5)
        cfg_penalty = h.config.coherence_writeback_penalty
        lat_with = h.access(1, LINE).latency
        # same topology without a remote M copy:
        baseline.access(0, LINE)  # owner reads own line (free)
        lat_owner = baseline.access(0, LINE).latency
        assert lat_with >= cfg_penalty

    def test_invisible_access_leaves_coherence_untouched(self):
        h = self.make()
        h.write(0, LINE, 5)
        h.access(1, LINE, visible=False)
        assert h.coherence.state(1, LINE) is None
        assert h.coherence.owner(LINE) == 0

    def test_flush_clears_directory(self):
        h = self.make()
        h.write(0, LINE, 5)
        h.flush(LINE)
        assert h.coherence.sharers(LINE) == []

    def test_values_remain_correct_across_cores(self):
        h = self.make()
        h.write(0, LINE, 42)
        assert h.access(1, LINE).value == 42
        h.write(1, LINE, 43)
        assert h.access(0, LINE).value == 43

    def test_can_disable_coherence(self):
        from dataclasses import replace

        cfg = replace(small_hierarchy_config(), enable_coherence=False)
        h = CacheHierarchy(2, cfg)
        assert h.coherence is None
        h.access(1, LINE)
        h.write(0, LINE, 5)
        assert h.l1_hit(1, LINE)  # stale presence: the old behaviour

    def test_producer_consumer_ping_pong_counts(self):
        h = self.make()
        for i in range(4):
            h.write(i % 2, LINE, i)
        assert h.coherence.stats.writeback_penalties >= 3
        assert h.coherence.stats.invalidations_sent >= 3
