"""Tests for the generic set-associative cache."""

import pytest

from repro.memory.cache import Cache


def make_cache(**kw):
    defaults = dict(num_sets=4, num_ways=2, line_size=64, policy="lru")
    defaults.update(kw)
    return Cache("test", **defaults)


class TestBasics:
    def test_miss_then_hit(self):
        c = make_cache()
        assert not c.access(0x100)
        c.fill(0x100)
        assert c.access(0x100)
        assert c.stats.hits == 1
        assert c.stats.misses == 1

    def test_line_granularity(self):
        c = make_cache()
        c.fill(0x100)
        assert c.access(0x100 + 63)
        assert not c.access(0x100 + 64)

    def test_eviction_on_conflict(self):
        c = make_cache(num_sets=1, num_ways=2)
        c.fill(0 * 64)
        c.fill(1 * 64)
        evicted = c.fill(2 * 64)
        assert evicted == 0  # LRU victim
        assert not c.contains(0)
        assert c.stats.evictions == 1

    def test_redundant_fill_is_touch(self):
        c = make_cache(num_sets=1, num_ways=2)
        c.fill(0)
        c.fill(64)
        c.fill(0)  # touch: 0 becomes MRU
        assert c.fill(128) == 64

    def test_invalidate(self):
        c = make_cache()
        c.fill(0x100)
        assert c.invalidate(0x100)
        assert not c.contains(0x100)
        assert not c.invalidate(0x100)

    def test_flush_all(self):
        c = make_cache()
        for i in range(8):
            c.fill(i * 64)
        c.flush_all()
        assert c.resident_lines() == []

    def test_on_evict_callback(self):
        c = make_cache(num_sets=1, num_ways=1)
        seen = []
        c.on_evict = seen.append
        c.fill(0)
        c.fill(64)
        assert seen == [0]

    def test_size_bytes_geometry(self):
        c = Cache("t", size_bytes=32 * 1024, num_ways=8, line_size=64)
        assert c.layout.num_sets == 64

    def test_zero_sets_rejected(self):
        with pytest.raises(ValueError):
            Cache("t", size_bytes=64, num_ways=8, line_size=64)

    def test_requires_some_geometry(self):
        with pytest.raises(ValueError):
            Cache("t", num_ways=4)


class TestInvisibleAccess:
    """update=False accesses must not perturb replacement state (§2.2)."""

    def test_probe_does_not_promote(self):
        c = make_cache(num_sets=1, num_ways=2)
        c.fill(0)
        c.fill(64)
        # invisible access to 0: without it, 0 is LRU and gets evicted
        c.access(0, update=False)
        assert c.fill(128) == 0

    def test_visible_access_promotes(self):
        c = make_cache(num_sets=1, num_ways=2)
        c.fill(0)
        c.fill(64)
        c.access(0, update=True)
        assert c.fill(128) == 64

    def test_contains_is_pure(self):
        c = make_cache()
        c.fill(0)
        before = c.stats.accesses
        assert c.contains(0)
        assert c.stats.accesses == before


class TestTouch:
    def test_touch_promotes_resident_line(self):
        c = make_cache(num_sets=1, num_ways=2)
        c.fill(0)
        c.fill(64)
        assert c.touch(0)
        assert c.fill(128) == 64

    def test_touch_missing_line(self):
        c = make_cache()
        assert not c.touch(0x500)


class TestIntrospection:
    def test_set_contents_ordered_by_way(self):
        c = make_cache(num_sets=1, num_ways=4)
        c.fill(0)
        c.fill(64)
        contents = c.set_contents(0)
        assert contents[0] == 0
        assert contents[1] == 64
        assert contents[2] is None

    def test_policy_state_exposed(self):
        c = make_cache(policy="qlru", num_sets=1, num_ways=4)
        c.fill(0)
        assert c.set_policy_state(0)[0] == 1  # QLRU insert age

    def test_hit_rate(self):
        c = make_cache()
        c.fill(0)
        c.access(0)
        c.access(64)
        assert c.stats.hit_rate == 0.5

    def test_stats_reset(self):
        c = make_cache()
        c.access(0)
        c.stats.reset()
        assert c.stats.accesses == 0
