"""Tests for eviction-set construction."""

import pytest

from repro.memory import (
    AccessKind,
    CacheHierarchy,
    HierarchyConfig,
    LevelConfig,
    build_eviction_set,
    find_eviction_set_by_timing,
)


def hierarchy(slices=2):
    cfg = HierarchyConfig(
        l1i=LevelConfig(8, 2, latency=3),
        l1d=LevelConfig(8, 2, latency=3),
        l2=LevelConfig(16, 2, latency=12),
        llc=LevelConfig(32, 4, latency=40, policy="qlru", num_slices=slices),
        dram_latency=200,
    )
    return CacheHierarchy(2, cfg)


class TestOmniscientBuilder:
    def test_all_lines_congruent(self):
        h = hierarchy()
        target = 0x12345
        evs = build_eviction_set(h, target, 8)
        layout = h.llc.layout
        assert len(set(evs)) == 8
        for line in evs:
            assert layout.same_set(target, line)
            assert line != layout.line_addr(target)

    def test_skip_produces_disjoint_sets(self):
        h = hierarchy()
        target = 0x4000
        evs1 = build_eviction_set(h, target, 6)
        evs2 = build_eviction_set(h, target, 6, skip=6)
        assert not set(evs1) & set(evs2)

    def test_avoid_list_respected(self):
        h = hierarchy()
        target = 0x4000
        first = build_eviction_set(h, target, 3)
        second = build_eviction_set(h, target, 3, avoid=first)
        assert not set(first) & set(second)

    def test_eviction_set_actually_evicts(self):
        h = hierarchy()
        target = 0x8000
        evs = build_eviction_set(h, target, h.llc.num_ways + 1)
        h.access(0, target)
        for _ in range(3):
            for line in evs:
                h.access(0, line)
        assert not h.llc.contains(target)


class TestTimingBuilder:
    def test_finds_congruent_lines(self):
        h = hierarchy()
        target = 0x6000
        evs = find_eviction_set_by_timing(h, target, h.llc.num_ways, core=1)
        layout = h.llc.layout
        assert len(evs) == h.llc.num_ways
        for line in evs:
            assert layout.same_set(target, line)

    def test_single_slice_trivial(self):
        h = hierarchy(slices=1)
        target = 0x6000
        evs = find_eviction_set_by_timing(h, target, 4, core=1)
        assert len(evs) == 4
