"""Tests for QLRU_H11_M1_R0_U0, including the Figure 8 state walk.

The paper's D-cache receiver depends on a specific distinguishing
property of this policy (§4.2.2): after priming a 16-way set with 15
eviction lines (EVS1, promoted to age 0) plus the target line A, the
victim's access order (A-B vs B-A) leaves exactly one of {A, B} resident
after a 15-line probe (EVS2) — and *which one* depends on the order.
"""

import pytest

from repro.memory.cache import Cache
from repro.memory.qlru import QLRUPolicy, INSERT_AGE, MAX_AGE


class TestQLRUPrimitives:
    def test_insertion_age_is_one(self):
        p = QLRUPolicy(4)
        way = p.select_victim([False] * 4)
        p.on_fill(way)
        assert p.ages()[way] == INSERT_AGE

    def test_hit_promotion_h11(self):
        p = QLRUPolicy(4)
        for age, expected in [(3, 1), (2, 1), (1, 0), (0, 0)]:
            p._age[0] = age
            p.on_hit(0)
            assert p.ages()[0] == expected

    def test_r0_prefers_leftmost_invalid(self):
        p = QLRUPolicy(4)
        assert p.select_victim([True, False, True, False]) == 1

    def test_r0_evicts_leftmost_age3(self):
        p = QLRUPolicy(4)
        p._age = [1, 3, 0, 3]
        assert p.select_victim([True] * 4) == 1

    def test_u0_ages_until_candidate(self):
        p = QLRUPolicy(4)
        p._age = [0, 1, 0, 2]
        victim = p.select_victim([True] * 4)
        # ages incremented by 1 until the max (2) reached 3
        assert victim == 3
        assert p.ages() == [1, 2, 1, MAX_AGE]

    def test_u0_saturates(self):
        p = QLRUPolicy(2)
        p._age = [0, 0]
        victim = p.select_victim([True, True])
        assert victim == 0
        assert p.ages() == [MAX_AGE, MAX_AGE]

    def test_invalidate_resets_age(self):
        p = QLRUPolicy(2)
        p._age = [0, 0]
        p.on_invalidate(1)
        assert p.ages()[1] == MAX_AGE


def make_qlru_set(ways=16):
    """A one-set QLRU cache standing in for one LLC set."""
    return Cache("llc-set", num_sets=1, num_ways=ways, policy="qlru")


LINE = 64


def addr(i):
    """i-th distinct line mapping to the single set."""
    return i * LINE


class TestFigure8Walk:
    """Replays the prime -> victim -> probe protocol of §4.2.2/Fig. 8."""

    WAYS = 16

    def prime(self, cache, evs1, a):
        # "Access EVS1 many times + access A": saturate EVS1 ages at 0.
        for _ in range(4):
            for line in evs1:
                if not cache.access(line):
                    cache.fill(line)
        if not cache.access(a):
            cache.fill(a)

    def run_protocol(self, order):
        cache = make_qlru_set(self.WAYS)
        evs1 = [addr(i) for i in range(self.WAYS - 1)]  # EV0..EV14
        evs2 = [addr(100 + i) for i in range(self.WAYS - 1)]  # EV15..EV29
        a, b = addr(50), addr(51)
        self.prime(cache, evs1, a)
        # victim access pair in the secret-dependent order
        for line in order(a, b):
            if not cache.access(line):
                cache.fill(line)
        # probe
        for line in evs2:
            if not cache.access(line):
                cache.fill(line)
        resident = set(cache.set_contents(a)) - {None}
        return a in resident, b in resident

    def test_prime_state(self):
        cache = make_qlru_set(self.WAYS)
        evs1 = [addr(i) for i in range(self.WAYS - 1)]
        a = addr(50)
        self.prime(cache, evs1, a)
        contents = cache.set_contents(a)
        ages = cache.set_policy_state(a)
        assert set(contents) == set(evs1) | {a}
        # EVS1 lines promoted to age 0; A freshly inserted at age 1.
        way_of_a = contents.index(a)
        assert ages[way_of_a] == INSERT_AGE
        for way, line in enumerate(contents):
            if line != a:
                assert ages[way] == 0

    def test_order_ab_leaves_b_resident(self):
        a_res, b_res = self.run_protocol(lambda a, b: (a, b))
        assert not a_res
        assert b_res

    def test_order_ba_leaves_a_resident(self):
        a_res, b_res = self.run_protocol(lambda a, b: (b, a))
        assert a_res
        assert not b_res

    def test_orders_distinguishable(self):
        """The receiver's decoding rule: residency of A vs B <=> order."""
        ab = self.run_protocol(lambda a, b: (a, b))
        ba = self.run_protocol(lambda a, b: (b, a))
        assert ab != ba

    def test_victim_access_b_after_ab_state(self):
        """Mid-protocol check mirroring Fig. 8(b): after A-B, B is fresh
        (age 1) and every EVS1 line aged to 3."""
        cache = make_qlru_set(self.WAYS)
        evs1 = [addr(i) for i in range(self.WAYS - 1)]
        a, b = addr(50), addr(51)
        self.prime(cache, evs1, a)
        for line in (a, b):
            if not cache.access(line):
                cache.fill(line)
        contents = cache.set_contents(a)
        ages = cache.set_policy_state(a)
        assert b in contents
        assert ages[contents.index(b)] == INSERT_AGE
        # A was hit (age 1 -> 0) then aged by U0 when B's fill needed a victim.
        surviving_evs1 = [w for w, l in enumerate(contents) if l in set(evs1)]
        assert all(ages[w] == MAX_AGE for w in surviving_evs1)
