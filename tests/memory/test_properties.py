"""Property-based tests on memory-system invariants (hypothesis).

These encode the paper's foundational assumptions as machine-checked
properties: replacement state is a non-commutative function of the
access order (§3.3), invisible accesses change nothing (§2.2), the LLC
stays inclusive, and MSHR bookkeeping never leaks entries.
"""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.memory.cache import Cache
from repro.memory.hierarchy import AccessKind, CacheHierarchy
from repro.memory.mshr import MSHRFile, MSHRFullError
from repro.memory.replacement import POLICY_NAMES

from tests.conftest import small_hierarchy_config

LINE = 64

lines = st.integers(min_value=0, max_value=31).map(lambda i: i * LINE)
access_seqs = st.lists(lines, min_size=1, max_size=60)
policies = st.sampled_from(POLICY_NAMES)


def run_sequence(cache, seq):
    for addr in seq:
        if not cache.access(addr):
            cache.fill(addr)


class TestCacheInvariants:
    @settings(max_examples=60, deadline=None)
    @given(policy=policies, seq=access_seqs)
    def test_no_duplicate_lines_in_a_set(self, policy, seq):
        cache = Cache("t", num_sets=2, num_ways=4, policy=policy)
        run_sequence(cache, seq)
        resident = cache.resident_lines()
        assert len(resident) == len(set(resident))

    @settings(max_examples=60, deadline=None)
    @given(policy=policies, seq=access_seqs)
    def test_occupancy_bounded_by_ways(self, policy, seq):
        cache = Cache("t", num_sets=2, num_ways=4, policy=policy)
        run_sequence(cache, seq)
        for addr in set(seq):
            contents = [l for l in cache.set_contents(addr) if l is not None]
            assert len(contents) <= 4

    @settings(max_examples=60, deadline=None)
    @given(policy=policies, seq=access_seqs)
    def test_most_recent_access_resident(self, policy, seq):
        """Whatever the policy, the line just accessed must be cached."""
        cache = Cache("t", num_sets=2, num_ways=4, policy=policy)
        run_sequence(cache, seq)
        assert cache.contains(seq[-1])

    @settings(max_examples=60, deadline=None)
    @given(seq=access_seqs)
    def test_qlru_ages_always_in_range(self, seq):
        cache = Cache("t", num_sets=2, num_ways=4, policy="qlru")
        run_sequence(cache, seq)
        for addr in set(seq):
            for age in cache.set_policy_state(addr):
                assert 0 <= age <= 3

    @settings(max_examples=60, deadline=None)
    @given(policy=policies, seq=access_seqs, probe=lines)
    def test_invisible_probe_changes_nothing(self, policy, seq, probe):
        """§2.2: a non-updating access must leave cache state and
        replacement metadata bit-identical."""
        a = Cache("a", num_sets=2, num_ways=4, policy=policy)
        b = Cache("b", num_sets=2, num_ways=4, policy=policy)
        run_sequence(a, seq)
        run_sequence(b, seq)
        b.access(probe, update=False)
        assert a.resident_lines() == b.resident_lines()
        for addr in set(seq) | {probe}:
            assert a.set_policy_state(addr) == b.set_policy_state(addr)

    @settings(max_examples=40, deadline=None)
    @given(
        seq=st.lists(
            st.integers(min_value=0, max_value=7).map(lambda i: i * LINE),
            min_size=4,
            max_size=16,
        ),
    )
    def test_replacement_state_order_sensitive(self, seq):
        """§3.3 non-commutativity: swapping the last two *distinct*
        accesses leaves different replacement metadata on a filled
        QLRU set (given enough history)."""
        assume(len(set(seq)) >= 2)
        a_addr, b_addr = 0 * LINE, 1 * LINE
        assume(a_addr in seq or b_addr in seq or True)

        def state_after(tail):
            cache = Cache("t", num_sets=1, num_ways=4, policy="qlru")
            run_sequence(cache, seq + tail)
            return (cache.set_contents(0), cache.set_policy_state(0))

        ab = state_after([a_addr, b_addr])
        ba = state_after([b_addr, a_addr])
        # The property the receiver depends on: the two orders are
        # distinguishable from (contents, ages) for SOME history; we
        # assert the weaker, always-true direction — identical histories
        # with identical tails match exactly (determinism) ...
        assert state_after([a_addr, b_addr]) == ab
        # ... and record when the orders diverge (usually they do).
        # Non-divergence is allowed for degenerate histories.
        if ab != ba:
            assert ab[0] != ba[0] or ab[1] != ba[1]

    def test_ab_vs_ba_differ_on_canonical_history(self):
        """The deterministic instance of non-commutativity used by the
        attack: a full set primed identically decodes A-B vs B-A."""
        a_addr, b_addr = 100 * LINE, 101 * LINE

        def state(order):
            cache = Cache("t", num_sets=1, num_ways=4, policy="qlru")
            for i in range(3):
                run_sequence(cache, [i * LINE] * 2)
            run_sequence(cache, [a_addr])
            run_sequence(cache, list(order))
            return cache.set_contents(0), cache.set_policy_state(0)

        assert state([a_addr, b_addr]) != state([b_addr, a_addr])


class TestHierarchyInvariants:
    @settings(max_examples=30, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1),  # core
                lines,
                st.booleans(),  # visible?
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_llc_inclusive_after_any_sequence(self, ops):
        h = CacheHierarchy(2, small_hierarchy_config())
        for core, addr, visible in ops:
            h.access(core, addr, AccessKind.DATA, visible=visible)
        for core in range(2):
            for line in h.l1d[core].resident_lines():
                assert h.llc.contains(line), "L1 line missing from LLC"
            for line in h.l2[core].resident_lines():
                assert h.llc.contains(line), "L2 line missing from LLC"

    @settings(max_examples=30, deadline=None)
    @given(
        ops=st.lists(st.tuples(st.integers(0, 1), lines), min_size=1, max_size=30),
        flushed=lines,
    )
    def test_flush_is_global(self, ops, flushed):
        h = CacheHierarchy(2, small_hierarchy_config())
        for core, addr in ops:
            h.access(core, addr)
        h.flush(flushed)
        assert h.hit_level(0, flushed) == "DRAM"
        assert h.hit_level(1, flushed) == "DRAM"

    @settings(max_examples=30, deadline=None)
    @given(seq=access_seqs)
    def test_invisible_never_logs_or_fills(self, seq):
        h = CacheHierarchy(1, small_hierarchy_config())
        for addr in seq:
            h.access(0, addr, visible=False)
        assert h.visible_log == []
        assert h.llc.resident_lines() == []


class TestMSHRInvariants:
    @settings(max_examples=50, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["alloc", "release", "drop"]),
                st.integers(min_value=0, max_value=5),  # line index
                st.integers(min_value=0, max_value=5),  # consumer
            ),
            min_size=1,
            max_size=60,
        )
    )
    def test_bookkeeping_never_leaks(self, ops):
        m = MSHRFile(3)
        for op, line_idx, consumer in ops:
            line = line_idx * LINE
            if op == "alloc":
                if m.can_allocate(line):
                    m.allocate(line, consumer)
                else:
                    with pytest.raises(MSHRFullError):
                        m.allocate(line, consumer)
            elif op == "release":
                m.release(line)
            else:
                m.drop_consumer(consumer)
            assert len(m) <= m.capacity
            for entry_line in m.outstanding_lines():
                assert m.has_entry(entry_line)

    @settings(max_examples=50, deadline=None)
    @given(consumers=st.lists(st.integers(0, 20), min_size=1, max_size=20))
    def test_coalesced_consumers_all_returned(self, consumers):
        m = MSHRFile(2)
        for c in consumers:
            m.allocate(0, c)
        entry = m.release(0)
        assert entry.consumers == set(consumers)
