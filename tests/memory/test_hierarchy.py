"""Tests for the multi-level hierarchy, visible/invisible semantics,
the C(E) visible-access log, and cross-core sharing."""

import pytest

from repro.memory import AccessKind, CacheHierarchy, HierarchyConfig, LevelConfig


def small_hierarchy(cores=2, **overrides):
    cfg = HierarchyConfig(
        l1i=LevelConfig(8, 2, latency=3),
        l1d=LevelConfig(8, 2, latency=3),
        l2=LevelConfig(16, 2, latency=12),
        llc=LevelConfig(16, 4, latency=40, policy="qlru"),
        dram_latency=200,
        l1d_mshrs=4,
        **overrides,
    )
    return CacheHierarchy(cores, cfg)


class TestLatencies:
    def test_cold_access_goes_to_dram(self):
        h = small_hierarchy()
        r = h.access(0, 0x1000)
        assert r.hit_level == "DRAM"
        assert r.latency == 3 + 12 + 40 + 200

    def test_second_access_hits_l1(self):
        h = small_hierarchy()
        h.access(0, 0x1000)
        r = h.access(0, 0x1000)
        assert r.hit_level == "L1"
        assert r.latency == 3

    def test_cross_core_hits_llc(self):
        h = small_hierarchy()
        h.access(0, 0x1000)
        r = h.access(1, 0x1000)
        assert r.hit_level == "LLC"
        assert r.latency == 3 + 12 + 40

    def test_l2_hit_after_l1_eviction(self):
        h = small_hierarchy()
        h.access(0, 0x1000)
        # evict from tiny L1 set (2 ways) with two conflicting lines
        l1_stride = 8 * 64
        h.access(0, 0x1000 + l1_stride)
        h.access(0, 0x1000 + 2 * l1_stride)
        r = h.access(0, 0x1000)
        assert r.hit_level in ("L2", "LLC")

    def test_inst_vs_data_l1s_are_separate(self):
        h = small_hierarchy()
        h.access(0, 0x1000, AccessKind.DATA)
        r = h.access(0, 0x1000, AccessKind.INST)
        assert r.hit_level != "L1"

    def test_miss_threshold_separates_llc_from_dram(self):
        h = small_hierarchy()
        t = h.miss_threshold()
        assert h.llc_hit_latency < t < h.dram_floor_latency


class TestVisibleLog:
    def test_l1_hits_do_not_log(self):
        h = small_hierarchy()
        h.access(0, 0x1000)
        n = len(h.visible_log)
        h.access(0, 0x1000)
        assert len(h.visible_log) == n

    def test_misses_log_with_cycle_and_core(self):
        h = small_hierarchy()
        h.access(1, 0x2000, cycle=55)
        entry = h.visible_log[-1]
        assert entry.core == 1
        assert entry.cycle == 55
        assert entry.line == 0x2000
        assert not entry.hit

    def test_llc_hit_logged_as_hit(self):
        h = small_hierarchy()
        h.access(0, 0x2000)
        h.access(1, 0x2000)
        assert h.visible_log[-1].hit

    def test_invisible_never_logs(self):
        h = small_hierarchy()
        h.access(0, 0x3000, visible=False)
        assert h.visible_log == []

    def test_clear_and_slice(self):
        h = small_hierarchy()
        h.access(0, 0x1000)
        idx = len(h.visible_log)
        h.access(0, 0x2000)
        assert [e.line for e in h.log_since(idx)] == [0x2000]
        h.clear_log()
        assert h.visible_log == []


class TestInvisibleSemantics:
    def test_invisible_does_not_fill(self):
        h = small_hierarchy()
        r = h.access(0, 0x1000, visible=False)
        assert r.hit_level == "DRAM"
        assert h.hit_level(0, 0x1000) == "DRAM"

    def test_invisible_reports_current_residence(self):
        h = small_hierarchy()
        h.access(0, 0x1000)          # fills everywhere for core 0
        r = h.access(1, 0x1000, visible=False)
        assert r.hit_level == "LLC"

    def test_invisible_does_not_update_replacement(self):
        h = small_hierarchy()
        sets = h.l1d[0].layout.num_sets
        stride = sets * 64
        a, b, c = 0x1000, 0x1000 + stride, 0x1000 + 2 * stride
        h.access(0, a)
        h.access(0, b)  # L1 set (2-way) now {a, b}, b MRU
        h.access(0, a, visible=False)  # must NOT promote a
        h.access(0, c)
        assert not h.l1d[0].contains(a)


class TestFlushAndInclusivity:
    def test_flush_removes_everywhere(self):
        h = small_hierarchy()
        h.access(0, 0x1000)
        h.access(1, 0x1000)
        h.flush(0x1000)
        assert h.hit_level(0, 0x1000) == "DRAM"
        assert h.hit_level(1, 0x1000) == "DRAM"

    def test_llc_eviction_back_invalidates(self):
        h = small_hierarchy()
        target = 0x1000
        h.access(0, target)
        layout = h.llc.layout
        filler = []
        n = 1
        while len(filler) < h.llc.num_ways + 1:
            cand = layout.congruent_address(target, n)
            filler.append(cand)
            n += 1
        for line in filler:
            for _ in range(3):
                h.access(1, line)
        assert not h.l1d[0].contains(target)

    def test_flush_all(self):
        h = small_hierarchy()
        h.access(0, 0x1000)
        h.flush_all()
        assert h.hit_level(0, 0x1000) == "DRAM"


class TestWrite:
    def test_write_updates_memory_and_fills(self):
        h = small_hierarchy()
        h.write(0, 0x4000, 77)
        assert h.memory.peek(0x4000) == 77
        assert h.l1_hit(0, 0x4000)

    def test_values_flow_through_reads(self):
        h = small_hierarchy()
        h.write(0, 0x4000, 12)
        assert h.access(1, 0x4000).value == 12


class TestTouchL1:
    def test_deferred_touch_promotes(self):
        h = small_hierarchy()
        h.access(0, 0x1000)
        assert h.touch_l1(0, 0x1000)

    def test_touch_absent_line(self):
        h = small_hierarchy()
        assert not h.touch_l1(0, 0x9000)
