"""Tests for the MSHR file (the GDMSHR gadget's finite resource)."""

import pytest

from repro.memory.mshr import MSHRFile, MSHRFullError


class TestAllocation:
    def test_allocate_distinct_lines(self):
        m = MSHRFile(2)
        m.allocate(0x000, consumer=1)
        m.allocate(0x040, consumer=2)
        assert m.full
        assert len(m) == 2

    def test_coalescing_same_line(self):
        """All misses to one line share one MSHR — the secret=0 case of
        the GDMSHR gadget, which leaves MSHRs free for the victim."""
        m = MSHRFile(2)
        for consumer in range(10):
            m.allocate(0x40, consumer=consumer)
        assert len(m) == 1
        assert m.coalesced == 9

    def test_full_rejects(self):
        m = MSHRFile(1)
        m.allocate(0, consumer=1)
        assert not m.can_allocate(64)
        with pytest.raises(MSHRFullError):
            m.allocate(64, consumer=2)
        assert m.rejections == 1

    def test_full_still_coalesces(self):
        m = MSHRFile(1)
        m.allocate(0, consumer=1)
        assert m.can_allocate(0)
        m.allocate(0, consumer=2)

    def test_capacity_positive(self):
        with pytest.raises(ValueError):
            MSHRFile(0)


class TestRelease:
    def test_release_returns_consumers(self):
        m = MSHRFile(4)
        m.allocate(0, consumer=5, cycle=10)
        m.allocate(0, consumer=6)
        entry = m.release(0)
        assert entry.consumers == {5, 6}
        assert entry.allocated_at == 10
        assert len(m) == 0

    def test_release_unknown_line(self):
        m = MSHRFile(4)
        assert m.release(0x40) is None

    def test_release_frees_capacity(self):
        m = MSHRFile(1)
        m.allocate(0, consumer=1)
        m.release(0)
        m.allocate(64, consumer=2)  # no exception


class TestSquash:
    def test_drop_consumer_frees_empty_entries(self):
        """Squash frees MSHRs whose only consumers were mis-speculated —
        the event that unblocks the victim load in GDMSHR."""
        m = MSHRFile(4)
        m.allocate(0, consumer=1)
        m.allocate(64, consumer=1)
        m.allocate(64, consumer=2)
        freed = m.drop_consumer(1)
        assert freed == [0]
        assert m.has_entry(64)

    def test_drop_unknown_consumer(self):
        m = MSHRFile(2)
        m.allocate(0, consumer=1)
        assert m.drop_consumer(99) == []


class TestStats:
    def test_peak_occupancy(self):
        m = MSHRFile(4)
        m.allocate(0, consumer=1)
        m.allocate(64, consumer=2)
        m.release(0)
        assert m.peak_occupancy == 2

    def test_outstanding_lines(self):
        m = MSHRFile(4)
        m.allocate(0, consumer=1)
        m.allocate(128, consumer=2)
        assert set(m.outstanding_lines()) == {0, 128}

    def test_reset(self):
        m = MSHRFile(2)
        m.allocate(0, consumer=1)
        m.reset()
        assert len(m) == 0
