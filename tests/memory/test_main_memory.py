"""Tests for the DRAM model."""

import pytest

from repro.memory.main_memory import MainMemory


class TestMainMemory:
    def test_default_zero(self):
        m = MainMemory()
        assert m.read(0x1234) == 0

    def test_write_read(self):
        m = MainMemory()
        m.write(0x100, 42)
        assert m.read(0x100) == 42
        assert m.reads == 1
        assert m.writes == 1

    def test_peek_does_not_count(self):
        m = MainMemory()
        m.write(0x100, 1)
        before = m.reads
        assert m.peek(0x100) == 1
        assert m.reads == before

    def test_write_block(self):
        m = MainMemory()
        m.write_block(0x200, [1, 2, 3], stride=8)
        assert m.peek(0x200) == 1
        assert m.peek(0x208) == 2
        assert m.peek(0x210) == 3

    def test_latency_without_jitter_constant(self):
        m = MainMemory(latency=100)
        assert {m.access_latency() for _ in range(10)} == {100}

    def test_jitter_bounded_and_seeded(self):
        a = MainMemory(latency=100, jitter=20, seed=3)
        b = MainMemory(latency=100, jitter=20, seed=3)
        seq_a = [a.access_latency() for _ in range(50)]
        seq_b = [b.access_latency() for _ in range(50)]
        assert seq_a == seq_b
        assert all(100 <= v <= 120 for v in seq_a)
        assert len(set(seq_a)) > 1

    def test_reseed_replays(self):
        m = MainMemory(latency=100, jitter=20, seed=3)
        first = [m.access_latency() for _ in range(10)]
        m.reseed(3)
        assert [m.access_latency() for _ in range(10)] == first

    def test_validation(self):
        with pytest.raises(ValueError):
            MainMemory(latency=0)
        with pytest.raises(ValueError):
            MainMemory(jitter=-1)

    def test_initial_contents(self):
        m = MainMemory(contents={0x10: 9})
        assert m.read(0x10) == 9

    def test_snapshot_is_copy(self):
        m = MainMemory()
        m.write(0x10, 1)
        snap = m.snapshot()
        snap[0x10] = 99
        assert m.peek(0x10) == 1
