"""Tests for the replacement-policy zoo."""

import random

import pytest

from repro.memory.replacement import (
    LRUPolicy,
    NRUPolicy,
    RandomPolicy,
    SRRIPPolicy,
    TreePLRUPolicy,
    make_policy,
    POLICY_NAMES,
)


def fill_all(policy, ways):
    for w in range(ways):
        valid = [i < w for i in range(ways)]
        assert policy.select_victim(valid) == w
        policy.on_fill(w)


class TestLRU:
    def test_prefers_invalid_ways(self):
        p = LRUPolicy(4)
        assert p.select_victim([False, False, False, False]) == 0
        p.on_fill(0)
        assert p.select_victim([True, False, False, False]) == 1

    def test_evicts_least_recently_used(self):
        p = LRUPolicy(4)
        fill_all(p, 4)
        p.on_hit(0)  # 0 is now MRU; LRU is 1
        assert p.select_victim([True] * 4) == 1

    def test_order_sensitivity(self):
        """LRU state is non-commutative in the access order (§3.3)."""
        p1, p2 = LRUPolicy(2), LRUPolicy(2)
        for p in (p1, p2):
            fill_all(p, 2)
        p1.on_hit(0), p1.on_hit(1)
        p2.on_hit(1), p2.on_hit(0)
        assert p1.select_victim([True, True]) != p2.select_victim([True, True])


class TestNRU:
    def test_clears_when_all_referenced(self):
        p = NRUPolicy(2)
        p.on_hit(0)
        p.on_hit(1)  # all referenced -> reset, keep way 1
        assert p.state_summary() == [0, 1]

    def test_victim_is_unreferenced(self):
        p = NRUPolicy(4)
        fill_all(p, 4)
        # last fill (way 3) caused reset; ways 0-2 unreferenced
        assert p.select_victim([True] * 4) == 0


class TestSRRIP:
    def test_insert_distant_hit_near(self):
        p = SRRIPPolicy(2)
        p.on_fill(0)
        assert p.state_summary()[0] == p.max_rrpv - 1
        p.on_hit(0)
        assert p.state_summary()[0] == 0

    def test_aging_until_candidate(self):
        p = SRRIPPolicy(2)
        p.on_fill(0)
        p.on_fill(1)
        p.on_hit(0)
        p.on_hit(1)
        victim = p.select_victim([True, True])
        assert victim == 0  # both aged to max together; leftmost wins


class TestTreePLRU:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            TreePLRUPolicy(6)

    def test_victim_avoids_recent(self):
        p = TreePLRUPolicy(4)
        fill_all(p, 4)
        p.on_hit(3)
        assert p.select_victim([True] * 4) != 3

    def test_alternates(self):
        p = TreePLRUPolicy(2)
        fill_all(p, 2)
        p.on_hit(0)
        assert p.select_victim([True, True]) == 1
        p.on_hit(1)
        assert p.select_victim([True, True]) == 0


class TestRandom:
    def test_deterministic_with_seed(self):
        p1 = RandomPolicy(8, rng=random.Random(7))
        p2 = RandomPolicy(8, rng=random.Random(7))
        seq1 = [p1.select_victim([True] * 8) for _ in range(20)]
        seq2 = [p2.select_victim([True] * 8) for _ in range(20)]
        assert seq1 == seq2

    def test_prefers_invalid(self):
        p = RandomPolicy(4)
        assert p.select_victim([True, False, True, True]) == 1


class TestFactory:
    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_all_names_construct(self, name):
        p = make_policy(name, 4)
        assert p.num_ways == 4

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_policy("mystery", 4)

    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_basic_protocol(self, name):
        """Every policy: fill all ways then pick a valid victim."""
        p = make_policy(name, 4)
        for w in range(4):
            valid = [i < w for i in range(4)]
            way = p.select_victim(valid)
            assert 0 <= way < 4
            assert not valid[way]
            p.on_fill(way)
        victim = p.select_victim([True] * 4)
        assert 0 <= victim < 4
