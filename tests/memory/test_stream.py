"""Counter-based RNG stream: determinism, seq semantics, SoA parity.

The whole point of :mod:`repro.memory.stream` is that a draw is a pure
function of its key, so three independent consumers — the scalar
:class:`MainMemory`, a restored snapshot, and the vectorized twin in
:mod:`repro.batch.ops` — reconstruct identical values.  These tests pin
each of those contracts.
"""

import pytest

from repro.memory.main_memory import MainMemory
from repro.memory.stream import (
    DOMAIN_DRAM,
    DOMAIN_NOISE_FIRE,
    DOMAIN_NOISE_INDEX,
    MASK64,
    CounterStream,
    draw_below,
    draw_uniform,
    mix64,
    stream_word,
)


# ----------------------------------------------------------------------
# the scalar mixer
# ----------------------------------------------------------------------
def test_mix64_is_deterministic_and_64_bit():
    assert mix64(0x1234) == mix64(0x1234)
    for x in (0, 1, MASK64, 0xDEADBEEF):
        assert 0 <= mix64(x) <= MASK64
    # Bijective finalizer: distinct inputs in a small range stay distinct.
    outs = {mix64(x) for x in range(4096)}
    assert len(outs) == 4096


def test_stream_word_keys_every_field():
    base = stream_word(7, DOMAIN_DRAM, 100, 0)
    assert stream_word(7, DOMAIN_DRAM, 100, 0) == base
    assert stream_word(8, DOMAIN_DRAM, 100, 0) != base
    assert stream_word(7, DOMAIN_DRAM + 1, 100, 0) != base
    assert stream_word(7, DOMAIN_DRAM, 101, 0) != base
    assert stream_word(7, DOMAIN_DRAM, 100, 1) != base


def test_domains_do_not_alias():
    """A noise decision at cycle t never perturbs the jitter drawn at
    the same cycle — the property that keeps lockstep lanes converged."""
    words = {
        stream_word(7, domain, 50, 0)
        for domain in (DOMAIN_DRAM, DOMAIN_NOISE_FIRE, DOMAIN_NOISE_INDEX)
    }
    assert len(words) == 3


def test_draw_below_and_uniform_ranges():
    for seq in range(64):
        assert 0 <= draw_below(3, DOMAIN_DRAM, 9, seq, 6) < 6
        assert 0.0 <= draw_uniform(3, DOMAIN_NOISE_FIRE, 9, seq) < 1.0


# ----------------------------------------------------------------------
# the scalar consumer
# ----------------------------------------------------------------------
def test_counter_stream_seq_semantics():
    stream = CounterStream(11)
    # Repeated draws at one (cycle, core) key count up...
    assert stream.next_seq(40, 0) == 0
    assert stream.next_seq(40, 0) == 1
    assert stream.next_seq(40, 0) == 2
    # ...a new key resets, even back at a previously-seen cycle.
    assert stream.next_seq(40, 2) == 0
    assert stream.next_seq(41, 2) == 0
    assert stream.next_seq(40, 0) == 0


def test_counter_stream_draws_are_reconstructible():
    """Two streams with the same seed replaying the same key sequence
    produce identical draws — draw sites share no hidden state."""
    a = CounterStream(99)
    b = CounterStream(99)
    keys = [(10, 0), (10, 0), (10, 2), (11, 0), (11, 0), (11, 0)]
    assert [a.jitter_draw(c, k, 5) for c, k in keys] == [
        b.jitter_draw(c, k, 5) for c, k in keys
    ]
    # And each value is exactly the pure-function draw for its key.
    c = CounterStream(99)
    d = CounterStream(99)
    for cycle, core in keys:
        seq = c.next_seq(cycle, core)
        assert d.jitter_draw(cycle, core, 5) == draw_below(
            99, DOMAIN_DRAM + core, cycle, seq, 6
        )


def test_counter_stream_state_round_trip():
    stream = CounterStream(5)
    stream.jitter_draw(100, 1, 7)
    stream.jitter_draw(100, 1, 7)
    saved = stream.state()
    next_direct = stream.jitter_draw(100, 1, 7)
    restored = CounterStream.from_state(saved)
    assert restored.jitter_draw(100, 1, 7) == next_direct


# ----------------------------------------------------------------------
# MainMemory integration
# ----------------------------------------------------------------------
def test_main_memory_jitter_is_keyed_not_sequenced():
    """Two memories with one seed agree draw-for-draw, and a capture /
    restore replays the identical suffix."""
    a = MainMemory(latency=200, jitter=9, seed=42)
    b = MainMemory(latency=200, jitter=9, seed=42)
    keys = [(5, 0), (5, 0), (6, 2), (7, 0)]
    assert [a.access_latency(c, k) for c, k in keys] == [
        b.access_latency(c, k) for c, k in keys
    ]
    saved = a.capture()
    tail = [a.access_latency(8, 0), a.access_latency(8, 0)]
    a.restore(saved)
    assert [a.access_latency(8, 0), a.access_latency(8, 0)] == tail


def test_main_memory_zero_jitter_touches_no_stream_state():
    mem = MainMemory(latency=150, jitter=0, seed=3)
    before = mem.capture()[1]
    assert mem.access_latency(100, 0) == 150
    assert mem.capture()[1] == before


def test_main_memory_reseed_restarts_the_stream():
    a = MainMemory(latency=200, jitter=9, seed=1)
    a.access_latency(5, 0)
    a.reseed(1)
    b = MainMemory(latency=200, jitter=9, seed=1)
    assert a.access_latency(5, 0) == b.access_latency(5, 0)


# ----------------------------------------------------------------------
# vectorized parity (the lockstep mirror's twin)
# ----------------------------------------------------------------------
def test_vectorized_stream_matches_scalar():
    np = pytest.importorskip("numpy")
    from repro.batch.ops import stream_words

    seeds = np.array([0, 1, 7, 99, MASK64], dtype=np.uint64)
    seqs = np.array([0, 1, 2, 0, 3], dtype=np.int64)
    for domain in (DOMAIN_DRAM, DOMAIN_DRAM + 2, DOMAIN_NOISE_FIRE):
        for cycle in (0, 1, 123456):
            words = stream_words(seeds, domain, cycle, seqs)
            for j in range(len(seeds)):
                assert int(words[j]) == stream_word(
                    int(seeds[j]), domain, cycle, int(seqs[j])
                )


def test_vectorized_jitter_draws_match_counter_streams():
    """stream_jitter_draws advances per-lane seq state and draws exactly
    as one scalar CounterStream per lane would."""
    np = pytest.importorskip("numpy")
    from types import SimpleNamespace

    from repro.batch.ops import stream_jitter_draws

    n, jitter = 4, 6
    seed = 1234
    state = SimpleNamespace(
        stream_seed=np.full(n, seed, dtype=np.uint64),
        stream_cycle=np.full(n, -1, dtype=np.int64),
        stream_core=np.full(n, -1, dtype=np.int64),
        stream_seq=np.full(n, -1, dtype=np.int64),
    )
    scalars = [CounterStream(seed) for _ in range(n)]
    lanes = np.arange(n)
    for cycle, core in [(10, 0), (10, 0), (10, 2), (12, 0), (12, 0)]:
        draws = stream_jitter_draws(state, lanes, cycle, core, jitter)
        expect = [s.jitter_draw(cycle, core, jitter) for s in scalars]
        assert list(draws) == expect
    # Partial-lane draws (only some lanes miss) stay per-lane exact.
    sub = np.array([1, 3])
    draws = stream_jitter_draws(state, sub, 13, 0, jitter)
    assert list(draws) == [
        scalars[1].jitter_draw(13, 0, jitter),
        scalars[3].jitter_draw(13, 0, jitter),
    ]
    untouched = stream_jitter_draws(state, np.array([0]), 12, 0, jitter)
    assert list(untouched) == [scalars[0].jitter_draw(12, 0, jitter)]
