"""Tests for address layout arithmetic."""

import pytest

from repro.memory import AddressLayout


class TestAddressLayout:
    def test_line_addr_masks_offset(self):
        layout = AddressLayout(line_size=64, num_sets=64)
        assert layout.line_addr(0x12345) == 0x12340
        assert layout.line_addr(0x12340) == 0x12340

    def test_set_index_uses_middle_bits(self):
        layout = AddressLayout(line_size=64, num_sets=64)
        assert layout.set_index(0x0) == 0
        assert layout.set_index(64) == 1
        assert layout.set_index(64 * 64) == 0  # wraps into tag

    def test_tag_strips_set_and_offset(self):
        layout = AddressLayout(line_size=64, num_sets=64)
        assert layout.tag(64 * 64) == 1

    def test_single_slice_is_zero(self):
        layout = AddressLayout(num_slices=1)
        assert layout.slice_id(0xABCDEF) == 0

    def test_slice_hash_deterministic_and_bounded(self):
        layout = AddressLayout(num_slices=8)
        for addr in range(0, 1 << 20, 4096):
            s = layout.slice_id(addr)
            assert 0 <= s < 8
            assert s == layout.slice_id(addr)

    def test_slice_hash_spreads(self):
        layout = AddressLayout(num_slices=4, num_sets=64)
        seen = {layout.slice_id(i * 64 * 64) for i in range(64)}
        assert len(seen) == 4

    def test_same_set_requires_slice_and_index(self):
        layout = AddressLayout(num_slices=4, num_sets=64)
        a = 0x10000
        b = layout.congruent_address(a, 1)
        assert layout.same_set(a, b)
        assert not layout.same_set(a, a + 64)

    def test_congruent_addresses_distinct(self):
        layout = AddressLayout(num_slices=4, num_sets=64)
        base = 0x4000
        lines = [layout.congruent_address(base, n) for n in range(8)]
        assert len(set(lines)) == 8
        for line in lines:
            assert layout.same_set(base, line)

    def test_congruent_zero_returns_base_line(self):
        layout = AddressLayout()
        assert layout.congruent_address(0x1234, 0) == layout.line_addr(0x1234)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            AddressLayout(line_size=48)
        with pytest.raises(ValueError):
            AddressLayout(num_sets=100)
        with pytest.raises(ValueError):
            AddressLayout(num_slices=3)

    def test_global_set_disjoint_across_slices(self):
        layout = AddressLayout(num_slices=4, num_sets=16)
        a, b = 0x1000, 0x2000
        if layout.slice_id(a) != layout.slice_id(b):
            assert layout.global_set(a) != layout.global_set(b) or (
                layout.set_index(a) != layout.set_index(b)
            )
