"""Unit tests for static instruction constructors."""

import pytest

from repro.isa import instructions as ins
from repro.isa.instructions import Instruction, OpClass


class TestConstructors:
    def test_alu_basics(self):
        inst = ins.alu("r1", ["r2", "r3"], lambda a, b: a + b, latency=5, port=0)
        assert inst.opclass is OpClass.ALU
        assert inst.dst == "r1"
        assert inst.srcs == ("r2", "r3")
        assert inst.latency == 5
        assert inst.port == 0
        assert inst.compute(2, 3) == 5

    def test_imm_produces_constant(self):
        inst = ins.imm("r1", 42)
        assert inst.srcs == ()
        assert inst.compute() == 42

    def test_load_address_function(self):
        inst = ins.load("r1", ["r2"], lambda base: base + 8)
        assert inst.opclass is OpClass.LOAD
        assert inst.compute(0x100) == 0x108
        assert inst.is_memory

    def test_store_requires_value_src(self):
        with pytest.raises(ValueError):
            Instruction(opclass=OpClass.STORE, srcs=("r1",), compute=lambda a: a)

    def test_store_ok(self):
        inst = ins.store(["r1"], lambda a: a, "r2")
        assert inst.value_src == "r2"
        assert inst.is_memory

    def test_branch_requires_target(self):
        with pytest.raises(ValueError):
            Instruction(opclass=OpClass.BRANCH, srcs=("r1",), compute=bool)

    def test_branch_ok(self):
        inst = ins.branch(["r1"], lambda v: v < 10, "out")
        assert inst.target == "out"
        assert inst.compute(3)
        assert not inst.compute(11)

    def test_latency_must_be_positive(self):
        with pytest.raises(ValueError):
            ins.alu("r1", [], lambda: 0, latency=0)

    def test_srcs_coerced_to_tuple(self):
        inst = ins.alu("r1", ["a", "b"], lambda a, b: a)
        assert isinstance(inst.srcs, tuple)

    def test_describe_mentions_name_and_regs(self):
        inst = ins.alu("r1", ["r2"], lambda a: a, name="sqrt")
        text = inst.describe()
        assert "sqrt" in text
        assert "r1" in text
        assert "r2" in text

    def test_writes_register(self):
        assert ins.imm("r1", 0).writes_register
        assert not ins.nop().writes_register
        assert not ins.halt().writes_register

    def test_fence_nop_halt_classes(self):
        assert ins.fence().opclass is OpClass.FENCE
        assert ins.nop().opclass is OpClass.NOP
        assert ins.halt().opclass is OpClass.HALT
