"""Tests for Program and ProgramBuilder."""

import pytest

from repro.isa import ProgramBuilder
from repro.isa.instructions import OpClass
from repro.isa.program import Program


def simple_program():
    b = ProgramBuilder()
    b.imm("r1", 5)
    b.label("loop_head")
    b.addi("r2", "r1", 1)
    b.branch_if(["r2"], lambda v: v > 3, "done")
    b.add("r3", "r1", "r2")
    b.label("done")
    b.halt()
    return b.build()


class TestProgramBuilder:
    def test_labels_resolve(self):
        prog = simple_program()
        assert prog.slot_of_label("loop_head") == 1
        assert prog.slot_of_label("done") == 4

    def test_auto_halt_appended(self):
        b = ProgramBuilder()
        b.imm("r1", 1)
        prog = b.build()
        assert prog.at(len(prog) - 1).opclass is OpClass.HALT

    def test_no_double_halt(self):
        b = ProgramBuilder()
        b.halt()
        prog = b.build()
        assert sum(1 for i in prog if i.opclass is OpClass.HALT) == 1

    def test_duplicate_label_rejected(self):
        b = ProgramBuilder()
        b.label("x")
        b.nop()
        with pytest.raises(ValueError):
            b.label("x")

    def test_unknown_branch_target_rejected(self):
        b = ProgramBuilder()
        b.branch_if([], lambda: True, "nowhere")
        with pytest.raises(ValueError):
            b.build()

    def test_addresses(self):
        prog = simple_program()
        assert prog.address_of_slot(0) == prog.code_base
        assert prog.address_of_slot(2) == prog.code_base + 2 * prog.inst_size
        assert prog.slot_of_address(prog.code_base + 4) == 1

    def test_address_alignment_check(self):
        prog = simple_program()
        with pytest.raises(ValueError):
            prog.slot_of_address(prog.code_base + 2)

    def test_align_to_line_pads_with_nops(self):
        b = ProgramBuilder(line_size=64)
        b.imm("r1", 0)
        b.align_to_line()
        b.label("target")
        b.nop(name="target instr")
        prog = b.build()
        addr = prog.address_of_label("target")
        assert addr % 64 == 0
        # the pad is made of NOPs
        for slot in range(1, prog.slot_of_label("target")):
            assert prog.at(slot).opclass is OpClass.NOP

    def test_branch_target_slot(self):
        prog = simple_program()
        branch_slot = next(
            i for i, inst in enumerate(prog) if inst.opclass is OpClass.BRANCH
        )
        assert prog.branch_target_slot(branch_slot) == prog.slot_of_label("done")

    def test_branch_target_slot_rejects_non_branch(self):
        prog = simple_program()
        with pytest.raises(ValueError):
            prog.branch_target_slot(0)

    def test_listing_contains_labels(self):
        text = simple_program().listing()
        assert "loop_head:" in text
        assert "done:" in text

    def test_jump_is_always_taken_branch(self):
        b = ProgramBuilder()
        b.jump("end")
        b.nop()
        b.label("end")
        prog = b.build()
        assert prog.at(0).compute()


class TestProgramValidation:
    def test_label_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Program(instructions=[], labels={"x": 5})

    def test_store_of_written_register_accepted(self):
        b = ProgramBuilder()
        b.imm("v", 7)
        b.store_addr(0x1000, "v")
        b.halt()
        prog = b.build()
        assert any(i.opclass is OpClass.STORE for i in prog)

    def test_store_of_unwritten_value_src_rejected(self):
        b = ProgramBuilder()
        b.imm("v", 7)
        b.store_addr(0x1000, "w")  # nothing ever writes 'w'
        b.halt()
        with pytest.raises(ValueError, match="value_src"):
            b.build()

    def test_store_cannot_feed_itself(self):
        # A store writes memory, not a register: another store's output
        # name does not count as a written value source.
        b = ProgramBuilder()
        b.imm("v", 7)
        b.store_addr(0x1000, "v")
        b.store_addr(0x1040, "x")
        b.halt()
        with pytest.raises(ValueError, match="value_src"):
            b.build()
