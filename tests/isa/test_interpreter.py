"""Tests for the functional interpreter (golden model)."""

import pytest

from repro.isa import Interpreter, ProgramBuilder
from repro.isa.interpreter import InterpreterError


class TestInterpreter:
    def test_straightline_arithmetic(self):
        b = ProgramBuilder()
        b.imm("r1", 7)
        b.addi("r2", "r1", 3)
        b.add("r3", "r1", "r2")
        result = Interpreter(b.build()).run()
        assert result.registers["r3"] == 17
        assert result.halted

    def test_load_store_roundtrip(self):
        b = ProgramBuilder()
        b.imm("r1", 0x1000)
        b.imm("r2", 99)
        b.store(["r1"], lambda a: a, "r2")
        b.load("r3", ["r1"], lambda a: a)
        result = Interpreter(b.build()).run()
        assert result.registers["r3"] == 99
        assert result.memory[0x1000] == 99
        assert result.memory_trace == [("store", 0x1000), ("load", 0x1000)]

    def test_uninitialized_memory_reads_zero(self):
        b = ProgramBuilder()
        b.load_addr("r1", 0xDEAD0)
        result = Interpreter(b.build()).run()
        assert result.registers["r1"] == 0

    def test_branch_taken(self):
        b = ProgramBuilder()
        b.imm("r1", 1)
        b.branch_if(["r1"], lambda v: v == 1, "skip")
        b.imm("r2", 111)  # skipped
        b.label("skip")
        b.imm("r3", 222)
        result = Interpreter(b.build()).run()
        assert "r2" not in result.registers
        assert result.registers["r3"] == 222
        assert result.branch_outcomes == [True]

    def test_branch_not_taken(self):
        b = ProgramBuilder()
        b.imm("r1", 0)
        b.branch_if(["r1"], lambda v: v == 1, "skip")
        b.imm("r2", 111)
        b.label("skip")
        result = Interpreter(b.build()).run()
        assert result.registers["r2"] == 111
        assert result.branch_outcomes == [False]

    def test_backward_branch_loop(self):
        b = ProgramBuilder()
        b.imm("counter", 0)
        b.label("head")
        b.addi("counter", "counter", 1)
        b.branch_if(["counter"], lambda v: v < 5, "head")
        result = Interpreter(b.build()).run()
        assert result.registers["counter"] == 5
        assert result.branch_outcomes == [True] * 4 + [False]

    def test_initial_registers_and_memory(self):
        b = ProgramBuilder()
        b.load("r1", ["base"], lambda a: a)
        result = Interpreter(b.build()).run(
            registers={"base": 0x40}, memory={0x40: 7}
        )
        assert result.registers["r1"] == 7

    def test_instruction_budget(self):
        b = ProgramBuilder()
        b.label("spin")
        b.jump("spin")
        with pytest.raises(InterpreterError):
            Interpreter(b.build(), max_instructions=100).run()

    def test_fence_and_nop_are_architectural_noops(self):
        b = ProgramBuilder()
        b.imm("r1", 1)
        b.fence()
        b.nop()
        b.addi("r1", "r1", 1)
        result = Interpreter(b.build()).run()
        assert result.registers["r1"] == 2
        assert result.instructions_executed == 5  # includes halt

    def test_inputs_not_mutated(self):
        regs = {"r1": 5}
        mem = {0x10: 3}
        b = ProgramBuilder()
        b.addi("r1", "r1", 1)
        b.imm("r9", 0x10)
        b.imm("r8", 4)
        b.store(["r9"], lambda a: a, "r8")
        Interpreter(b.build()).run(registers=regs, memory=mem)
        assert regs == {"r1": 5}
        assert mem == {0x10: 3}
