"""Differential proof that snapshot/fork execution is exact.

The fork engine is only usable if a forked variant is *bit-identical*
to a cold-started trial — same summaries, same visible-access traces,
same structured event streams — for every speculation scheme.  These
tests run the comparison exhaustively.
"""

import pytest

from repro.core.harness import run_victim_trial
from repro.core.victims import victim_by_name
from repro.runner import SerialSweepRunner, TrialSpec
from repro.schemes.registry import SCHEME_FACTORIES
from repro.snapshot.fork import _begin, _probe_to_fork_point
from repro.staticcheck.sanitizer import InvariantSanitizer
from repro.trace import Tracer

ALL_SCHEMES = sorted(SCHEME_FACTORIES)

SECRETS = (0, 1)
SEEDS = (100, 101, 102)


def _specs_for(scheme):
    return [
        TrialSpec(victim="gdnpeu", scheme=scheme, secret=secret, seed=seed)
        for secret in SECRETS
        for seed in SEEDS
    ]


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_fork_bit_identical_summaries(scheme):
    """Forked sweep == cold sweep, outcome for outcome, for 2 secrets
    x 3 seeds under every scheme (summaries carry the full visible
    trace and first-access map, so equality is trace-level)."""
    specs = _specs_for(scheme)
    cold = SerialSweepRunner().run_outcomes(specs)
    forked = SerialSweepRunner(fork=True).run_outcomes(specs)
    assert all(o.ok for o in cold)
    assert forked == cold


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_fork_bit_identical_event_trace(scheme):
    """A variant forked at the automatically found fork point emits the
    exact event stream of a cold run with that secret — full tracer,
    every kind."""
    victim = victim_by_name("gdnpeu")
    spec = TrialSpec(victim="gdnpeu", scheme=scheme, secret=1, seed=7)
    setup = _begin(spec, victim, Tracer())
    secret_line = setup.machine.hierarchy.llc.layout.line_addr(
        victim.secret_addr
    )
    fork_cycle, fork_snap = _probe_to_fork_point(setup, secret_line)
    if fork_snap is None:
        pytest.skip(f"{scheme}: secret never sampled on this victim")

    # Fork the *other* secret from the probe's shared prefix.
    setup.machine.restore(fork_snap)
    setup.machine.hierarchy.memory.poke(victim.secret_addr, 0)
    setup.machine.run(
        until=lambda: setup.core.halted,
        max_cycles=spec.max_cycles - fork_cycle,
        fast_forward=True,
    )
    forked_events = list(setup.machine.tracer.events)

    cold_tracer = Tracer()
    cold = run_victim_trial(victim, scheme, 0, seed=7, tracer=cold_tracer)
    assert setup.machine.cycle == cold.cycles
    assert forked_events == list(cold_tracer.events)


@pytest.mark.parametrize(
    "scheme", ["unsafe", "dom-nontso", "stt", "muontrap", "invisispec-spectre"]
)
def test_restored_state_satisfies_invariants(scheme):
    """A restored fork snapshot is a valid pipeline state: run the
    suffix under the cycle-level invariant sanitizer and require every
    check to pass."""
    victim = victim_by_name("gdnpeu")
    spec = TrialSpec(victim="gdnpeu", scheme=scheme, secret=1, seed=3)
    setup = _begin(spec, victim, Tracer())
    secret_line = setup.machine.hierarchy.llc.layout.line_addr(
        victim.secret_addr
    )
    fork_cycle, fork_snap = _probe_to_fork_point(setup, secret_line)
    if fork_snap is None:
        pytest.skip(f"{scheme}: secret never sampled on this victim")
    machine, core = setup.machine, setup.core
    machine.restore(fork_snap)
    machine.hierarchy.memory.poke(victim.secret_addr, 0)
    sanitizer = InvariantSanitizer().attach(core)
    machine.fault_injector = sanitizer  # also disables fast-forward
    machine.run(
        until=lambda: core.halted, max_cycles=spec.max_cycles - fork_cycle
    )
    assert core.halted
    assert sanitizer.invariant_checks > 0


def test_fork_group_with_failing_member_falls_back():
    """A spec whose trial deadlocks must surface the same structured
    failure whether or not forking is enabled."""
    specs = [
        TrialSpec(victim="gdnpeu", scheme="unsafe", secret=s, max_cycles=40)
        for s in SECRETS
    ]
    cold = SerialSweepRunner().run_outcomes(specs)
    forked = SerialSweepRunner(fork=True).run_outcomes(specs)
    assert [o.status for o in cold] == [o.status for o in forked]
    assert forked == cold
