"""Snapshot round-trip properties.

``capture()`` -> ``restore()`` -> ``capture()`` must be the identity on
the captured representation, and a restored machine must continue
exactly as the original would have — at any cycle, under any scheme.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.harness import begin_victim_trial
from repro.core.victims import victim_by_name
from repro.schemes.registry import SCHEME_FACTORIES
from repro.snapshot import schema_components, state_schema_hash
from repro.trace import Tracer

ALL_SCHEMES = sorted(SCHEME_FACTORIES)


def _setup(scheme, secret=1, seed=0, trace=True):
    victim = victim_by_name("gdnpeu")
    return begin_victim_trial(
        victim,
        scheme,
        secret,
        seed=seed,
        tracer=Tracer() if trace else None,
    )


@settings(max_examples=25, deadline=None)
@given(
    scheme=st.sampled_from(ALL_SCHEMES),
    cycles=st.integers(min_value=0, max_value=200),
    secret=st.sampled_from((0, 1)),
)
def test_capture_restore_capture_is_identity(scheme, cycles, secret):
    """Property: re-capturing immediately after a restore reproduces the
    exact capture tuple (machine-wide, any mid-run cycle)."""
    setup = _setup(scheme, secret=secret)
    machine, core = setup.machine, setup.core
    while machine.cycle < cycles and not core.halted:
        machine.step()
    snap = machine.capture()
    machine.restore(snap)
    assert machine.capture() == snap


@settings(max_examples=25, deadline=None)
@given(
    scheme=st.sampled_from(ALL_SCHEMES),
    cycles=st.integers(min_value=1, max_value=300),
)
def test_resumed_run_matches_uninterrupted(scheme, cycles):
    """Property: restore + run-to-halt == run-to-halt, from any fork
    cycle — identical final cycle, stats, and event stream."""
    setup = _setup(scheme)
    machine, core = setup.machine, setup.core
    while machine.cycle < cycles and not core.halted:
        machine.step()
    snap = machine.capture()
    machine.run(until=lambda: core.halted, max_cycles=20_000)
    reference = (
        machine.cycle,
        core.stats.retired,
        core.stats.squashes,
        list(machine.tracer.events),
        list(machine.hierarchy.visible_log),
    )
    machine.restore(snap)
    machine.run(until=lambda: core.halted, max_cycles=20_000)
    resumed = (
        machine.cycle,
        core.stats.retired,
        core.stats.squashes,
        list(machine.tracer.events),
        list(machine.hierarchy.visible_log),
    )
    assert resumed == reference


def test_restore_preserves_container_identity():
    """Holders of shared mutable containers (tracer event list, visible
    log) must observe the restore — restore mutates in place, never
    rebinds."""
    setup = _setup("dom-nontso")
    machine = setup.machine
    events = machine.tracer.events
    log = machine.hierarchy.visible_log
    snap = machine.capture()
    machine.run(until=lambda: setup.core.halted, max_cycles=20_000)
    assert machine.tracer.events is events
    machine.restore(snap)
    assert machine.tracer.events is events
    assert machine.hierarchy.visible_log is log


def test_dyninstr_aliasing_survives_restore():
    """One dynamic instruction aliased across ROB/RS/LSU/trace must
    restore as one object, not several copies."""
    setup = _setup("unsafe")
    machine, core = setup.machine, setup.core
    while machine.cycle < 60 and not core.halted:
        machine.step()
    snap = machine.capture()
    machine.restore(snap)
    by_seq = {}
    for holder in (list(core.rob), list(core.rs), list(core.fetch_queue)):
        for instr in holder:
            prev = by_seq.setdefault(instr.seq, instr)
            assert prev is instr, f"seq {instr.seq} restored as two objects"


def test_state_schema_hash_is_stable_and_sensitive():
    """The schema hash is deterministic per build and covers every
    snapshot component (so any capture-layout change moves it)."""
    assert state_schema_hash() == state_schema_hash()
    names = {name for name, _, _ in schema_components()}
    assert {
        "Machine",
        "Core",
        "ROB",
        "ReservationStation",
        "ExecutionUnit",
        "CommonDataBus",
        "LoadStoreUnit",
        "CacheHierarchy",
        "Cache",
        "MSHRFile",
        "CoherenceDirectory",
        "MainMemory",
        "DynInstr",
    } <= names
    for _, version, fields in schema_components():
        assert version >= 1
        assert fields  # every component declares its captured fields


@pytest.mark.parametrize("scheme", ["muontrap", "priority", "cleanupspec"])
def test_scheme_state_roundtrip(scheme):
    """Scheme-internal transient state (filter caches, undo logs,
    wrapped base schemes) round-trips through capture_state."""
    setup = _setup(scheme)
    machine, core = setup.machine, setup.core
    while machine.cycle < 100 and not core.halted:
        machine.step()
    state = core.scheme.capture_state()
    core.scheme.restore_state(state)
    assert core.scheme.capture_state() == state
