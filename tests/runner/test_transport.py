"""Lean sweep transport: nothing heavy crosses the process boundary."""

import dataclasses
import pickle

import pytest

from repro.runner import SerialSweepRunner, TrialSpec, run_trial_outcome
from repro.runner.runner import _check_lean_transport
from repro.snapshot import (
    SnapshotSchemaError,
    load_snapshot,
    rehydrate_trial,
    save_snapshot,
)

#: Per-outcome pickle budget.  A summary is a handful of ints, a short
#: visible-access trace, and (optionally) aggregated metric dicts — if
#: an outcome ever approaches this, something heavy leaked in.
PICKLE_BUDGET = 32 * 1024


def _outcome(**overrides):
    spec = TrialSpec(
        victim="gdnpeu",
        scheme=overrides.pop("scheme", "dom-nontso"),
        secret=1,
        **overrides,
    )
    return spec, run_trial_outcome(spec, plan=None)


def test_outcome_pickle_fits_budget():
    for collect_metrics in (False, True):
        _, outcome = _outcome(collect_metrics=collect_metrics)
        size = len(pickle.dumps(outcome, pickle.HIGHEST_PROTOCOL))
        assert size < PICKLE_BUDGET, (
            f"outcome pickles to {size} bytes (collect_metrics="
            f"{collect_metrics}); transport is no longer lean"
        )


def test_sweep_outcomes_fit_budget():
    specs = [
        TrialSpec(victim="gdnpeu", scheme=s, secret=x)
        for s in ("unsafe", "invisispec-spectre")
        for x in (0, 1)
    ]
    for outcome in SerialSweepRunner(fork=True).run_outcomes(specs):
        assert len(pickle.dumps(outcome, pickle.HIGHEST_PROTOCOL)) < PICKLE_BUDGET


def test_transport_guard_rejects_simulator_objects():
    """Smuggling a Machine (or any simulator object) inside a summary
    field trips the guard before the outcome is shipped."""
    from repro.core.harness import prepare_machine
    from repro.core.victims import victim_by_name

    spec, outcome = _outcome()
    _check_lean_transport(outcome)  # the real outcome passes

    machine, _, _ = prepare_machine(victim_by_name("gdnpeu"), "unsafe", 1)
    fat_summary = dataclasses.replace(outcome.summary, metrics=machine)
    fat = dataclasses.replace(outcome, summary=fat_summary)
    with pytest.raises(TypeError, match="Machine"):
        _check_lean_transport(fat)


def test_snapshot_handle_flow(tmp_path):
    """snapshot_dir= ships a *path* in the summary; the handle
    rehydrates to the trial's final machine state out of process."""
    spec, outcome = _outcome(snapshot_dir=str(tmp_path))
    summary = outcome.summary
    assert summary.snapshot_path is not None
    assert summary.snapshot_path.startswith(str(tmp_path))
    # The handle itself never rides in the outcome.
    assert len(pickle.dumps(outcome, pickle.HIGHEST_PROTOCOL)) < PICKLE_BUDGET

    setup = rehydrate_trial(spec, summary.snapshot_path)
    assert setup.machine.cycle == summary.cycles
    assert setup.core.halted
    assert setup.core.stats.retired == summary.retired


def test_snapshot_schema_mismatch_refuses_restore(tmp_path, monkeypatch):
    spec, outcome = _outcome(snapshot_dir=str(tmp_path))
    import repro.snapshot.schema as snapshot_schema

    monkeypatch.setattr(
        snapshot_schema, "state_schema_hash", lambda: "0123456789abcdef"
    )
    with pytest.raises(SnapshotSchemaError):
        load_snapshot(outcome.summary.snapshot_path)
    with pytest.raises(SnapshotSchemaError):
        rehydrate_trial(spec, outcome.summary.snapshot_path)


def test_save_snapshot_reports_dropped_actions(tmp_path):
    """Mid-run snapshots drop pending scheduled closures and say so."""
    from repro.core.harness import begin_victim_trial
    from repro.core.victims import victim_by_name

    setup = begin_victim_trial(victim_by_name("gdnpeu"), "unsafe", 1)
    for _ in range(10):
        setup.machine.step()
    path = str(tmp_path / "mid.snap")
    dropped = save_snapshot(setup.machine, path)
    state, meta = load_snapshot(path)
    assert meta["dropped_actions"] == dropped
    assert state[2] == []  # the scheduled heap never travels
