"""Differential bit-identity for the forward-interference sweeps.

The forward victims time *older, speculation-invariant* instructions,
so their channel is pure cycle arithmetic — which makes them the
sharpest probe of every acceleration layer: a single perturbed cycle
in traced, forked, batched or journal-resumed execution would corrupt
the decoded secret.  Each layer must therefore be bit-identical to
cold execution across all 16 schemes x both secrets.
"""

from __future__ import annotations

import pytest

from repro.core.harness import run_victim_trial
from repro.core.victims import victim_by_name
from repro.runner import SerialSweepRunner, TrialJournal, expand_grid
from repro.schemes.registry import SCHEME_FACTORIES
from repro.system.stats import machine_metrics
from repro.trace import Tracer
from repro.workloads import FORWARD_VICTIMS

ALL_SCHEMES = sorted(SCHEME_FACTORIES)
MAX_CYCLES = 40_000


def _grid(schemes=ALL_SCHEMES, seeds=(0,)):
    return [
        spec
        for seed in seeds
        for spec in expand_grid(
            list(FORWARD_VICTIMS),
            list(schemes),
            base_seed=seed,
            max_cycles=MAX_CYCLES,
        )
    ]


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_forward_tracing_is_invisible(scheme):
    """Traced == untraced on everything the receiver reads: cycles,
    first-access map, visible log, and the full metrics projection."""
    for victim in FORWARD_VICTIMS:
        spec = victim_by_name(victim)
        for secret in (0, 1):
            plain = run_victim_trial(
                spec, scheme, secret, max_cycles=MAX_CYCLES
            )
            tracer = Tracer()
            traced = run_victim_trial(
                spec, scheme, secret, max_cycles=MAX_CYCLES, tracer=tracer
            )
            label = f"{victim}/{scheme}/s{secret}"
            assert traced.cycles == plain.cycles, label
            assert traced.access_cycle == plain.access_cycle, label
            assert traced.visible == plain.visible, label
            assert (
                machine_metrics(traced.machine).to_json()
                == machine_metrics(plain.machine).to_json()
            ), label
            assert len(tracer.events) > 0, label


def test_forward_fork_equals_cold():
    """Snapshot-fork sweep == cold sweep, outcome for outcome, over the
    full forward grid (summaries carry the complete visible trace, so
    equality is trace-level)."""
    specs = _grid(seeds=(0, 1))
    cold = SerialSweepRunner().run_outcomes(specs)
    assert all(o.ok for o in cold)
    forked = SerialSweepRunner(fork=True).run_outcomes(specs)
    assert forked == cold


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_forward_batch_bit_identical(scheme):
    """Batched lockstep == cold, with zero ejected lanes, per scheme
    across victims x secrets x seeds."""
    pytest.importorskip("numpy")
    from repro.batch.engine import run_batch_group_detailed

    for victim in FORWARD_VICTIMS:
        specs = [
            spec
            for seed in (100, 101)
            for spec in expand_grid(
                [victim], [scheme], base_seed=seed, max_cycles=MAX_CYCLES
            )
        ]
        cold = SerialSweepRunner().run_outcomes(specs)
        assert all(o.ok for o in cold)
        report = run_batch_group_detailed(specs)
        assert report.ejected == 0, f"{victim}/{scheme}"
        assert report.outcomes == cold, f"{victim}/{scheme}"


@pytest.mark.parametrize("scheme", ("unsafe", "invisispec-spectre"))
def test_forward_batch_event_traces_match_cold(scheme):
    """Batch-reconstructed event streams equal a cold tracer's, every
    kind, cycle and arg — on a leaking scheme the traces differ BETWEEN
    secrets, so this also proves the comparison has teeth."""
    pytest.importorskip("numpy")
    from repro.batch.engine import run_batch_group_detailed

    for victim in FORWARD_VICTIMS:
        vspec = victim_by_name(victim)
        specs = expand_grid([victim], [scheme], max_cycles=MAX_CYCLES)
        report = run_batch_group_detailed(specs, with_traces=True)
        assert report.ejected == 0
        for cohort in report.cohorts:
            assert cohort.error is None
            assert cohort.traces is not None
            for k, spec in enumerate(cohort.lane_specs):
                cold_tracer = Tracer()
                run_victim_trial(
                    vspec,
                    scheme,
                    spec.secret,
                    seed=spec.seed,
                    max_cycles=MAX_CYCLES,
                    tracer=cold_tracer,
                )
                assert cohort.traces[k] == list(cold_tracer.events), (
                    f"{victim}/{scheme}/s{spec.secret}/lane{k}"
                )


def test_forward_journal_checkpoint_resume(tmp_path):
    """An interrupted forward sweep resumes from its journal to the
    same outcome list as an uninterrupted run — journaled trials are
    trusted verbatim, the rest run fresh."""
    specs = _grid()
    journal = TrialJournal(tmp_path / "forward.jsonl")
    half = len(specs) // 2
    SerialSweepRunner().run_outcomes(specs[:half], journal=journal)
    assert len(journal) == half
    resumed = SerialSweepRunner().run_outcomes(specs, journal=journal)
    assert len(journal) == len(specs)
    fresh = SerialSweepRunner().run_outcomes(specs)
    assert resumed == fresh
