"""Sweep-runner determinism and pickling guarantees.

The load-bearing property: a ParallelSweepRunner must produce exactly
the TrialSummary sequence the SerialSweepRunner produces, in the same
order, for the same specs — otherwise parallel sweeps would not be a
drop-in replacement for the reference serial path.
"""

import pickle

import pytest

from repro.core.matrix import run_matrix
from repro.runner import (
    ParallelSweepRunner,
    SerialSweepRunner,
    TrialSpec,
    expand_grid,
    make_runner,
    run_trial_spec,
)
from repro.runner.spec import trial_seed

VICTIMS = ["gdnpeu", "gdmshr", "girs"]
SCHEMES = ["dom-nontso", "invisispec-spectre", "fence-spectre"]


def test_expand_grid_shape_and_seeds():
    specs = expand_grid(VICTIMS, SCHEMES)
    assert len(specs) == len(VICTIMS) * len(SCHEMES) * 2
    # Seeds are stable across processes/runs (CRC32, not salted hash).
    for spec in specs:
        assert spec.seed == trial_seed(spec.victim, spec.scheme, spec.secret)
    # Distinct trials get distinct seeds on this grid.
    assert len({s.seed for s in specs}) == len(specs)


def test_trial_spec_and_summary_pickle_roundtrip():
    spec = TrialSpec(victim="gdnpeu", scheme="dom-nontso", secret=1, seed=7)
    assert pickle.loads(pickle.dumps(spec)) == spec
    summary = run_trial_spec(spec)
    restored = pickle.loads(pickle.dumps(summary))
    assert restored == summary
    assert restored.ab_order() == summary.ab_order()


def test_parallel_matches_serial_trial_for_trial():
    specs = expand_grid(VICTIMS, SCHEMES)
    serial = SerialSweepRunner().run(specs)
    with ParallelSweepRunner(2) as runner:
        parallel = runner.run(specs)
    assert parallel.workers == 2
    assert len(parallel) == len(serial) == len(specs)
    # Frozen-dataclass equality covers cycles, access times, the whole
    # visible-access tuple, and retirement counts.
    assert list(parallel) == list(serial)


def test_parallel_matrix_matches_serial():
    schemes = ["dom-nontso", "fence-spectre"]
    serial = run_matrix(schemes=schemes)
    with ParallelSweepRunner(2) as runner:
        parallel = run_matrix(schemes=schemes, runner=runner)
    assert parallel == serial


def test_make_runner_resolution():
    assert isinstance(make_runner(1), SerialSweepRunner)
    runner = make_runner(3)
    assert isinstance(runner, ParallelSweepRunner)
    assert runner.workers == 3
    runner.close()


def test_workers_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_SWEEP_WORKERS", "1")
    assert isinstance(make_runner(), SerialSweepRunner)
    monkeypatch.setenv("REPRO_SWEEP_WORKERS", "4")
    runner = make_runner()
    assert isinstance(runner, ParallelSweepRunner)
    assert runner.workers == 4
    runner.close()


def test_sweep_result_grouping():
    specs = expand_grid(["gdnpeu"], SCHEMES)
    result = SerialSweepRunner().run(specs)
    grouped = result.by_scheme()
    assert set(grouped) == set(SCHEMES)
    assert all(len(v) == 2 for v in grouped.values())
    assert result.trials_per_second > 0
