"""Fault-tolerant sweep execution: isolation, retry, resume, injection.

The load-bearing properties:

* a faulting trial becomes a structured ``TrialOutcome`` failure, never
  an exception that loses the rest of the sweep;
* retries (lost workers, wall-clock timeouts) reuse the spec's CRC32
  seed, so a sweep with transient faults converges to exactly the
  fault-free ``SweepResult``;
* a journaled sweep interrupted at any point resumes to a result
  identical to an uninterrupted run.

Every fault here is injected deterministically via
``repro.runner.faults`` — which is itself under test: if injection were
broken, the convergence assertions would vacuously pass, so several
tests also assert the fault actually fired (attempt counts, statuses).
"""

import os
import signal
import subprocess
import sys
import time

import pytest

import repro
import repro.runner.runner as runner_mod
from repro.core.matrix import evaluate_cell
from repro.pipeline.core import CycleBudgetError, DeadlockError
from repro.runner import (
    FaultPlan,
    FaultSpec,
    ParallelSweepRunner,
    SerialSweepRunner,
    SweepFailure,
    TrialJournal,
    TrialSpec,
    TrialStatus,
    expand_grid,
    make_runner,
    run_trial_outcome,
    run_trial_spec,
)
from repro.runner import faults
from repro.runner.runner import WORKERS_ENV, default_workers

VICTIMS = ["gdnpeu", "gdmshr"]
SCHEMES = ["dom-nontso", "fence-spectre"]


def grid():
    return expand_grid(VICTIMS, SCHEMES)


@pytest.fixture(autouse=True)
def _no_leftover_fault_plan():
    """Fault plans are process-global; never leak one across tests."""
    faults.clear_plan()
    yield
    faults.clear_plan()


@pytest.fixture(scope="module")
def reference():
    """The fault-free serial result every convergence test compares to."""
    faults.clear_plan()
    return SerialSweepRunner().run(expand_grid(VICTIMS, SCHEMES))


DEADLOCK_FAULT = FaultSpec(
    "deadlock",
    victim="gdnpeu",
    scheme="dom-nontso",
    secret=1,
    at_cycle=123,
    max_attempts=99,
)
KILL_FAULT = FaultSpec(
    "worker-kill", victim="gdmshr", scheme="fence-spectre", secret=0, max_attempts=1
)


def _without(summaries, fault):
    return [
        s
        for s in summaries
        if not (
            s.victim == fault.victim
            and s.scheme == fault.scheme
            and s.secret == fault.secret
        )
    ]


# ----------------------------------------------------------------------
# trial-level fault isolation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("runner_cls", [SerialSweepRunner, ParallelSweepRunner])
def test_deadlocking_trial_is_isolated(runner_cls, reference):
    faults.install_plan(FaultPlan((DEADLOCK_FAULT,)))
    kwargs = {} if runner_cls is SerialSweepRunner else {"workers": 2}
    with runner_cls(**kwargs) as runner:
        result = runner.run(grid())
    assert len(result.failures) == 1
    failure = result.failures[0]
    assert failure.status is TrialStatus.DEADLOCK
    assert failure.error_type == "DeadlockError"
    assert failure.cycle == 123  # fired cycle-exactly despite fast-forward
    # Attributable from the record alone: victim/scheme/secret/seed all
    # in the message (satellite: DeadlockError context).
    for token in ("victim=", "dom-nontso", "secret=1", "seed="):
        assert token in failure.error_message
    # Every other trial completed and matches the fault-free reference.
    assert result.succeeded() == _without(list(reference), DEADLOCK_FAULT)
    # Failed trials keep their slot in the ordered outcome list.
    assert [o.ok for o in result.outcomes].count(False) == 1


def test_strictness_is_opt_in(reference):
    faults.install_plan(FaultPlan((DEADLOCK_FAULT,)))
    result = SerialSweepRunner().run(grid())  # does not raise
    with pytest.raises(SweepFailure) as excinfo:
        result.raise_if_failed()
    assert "deadlock" in str(excinfo.value)
    assert excinfo.value.failures == result.failures
    faults.clear_plan()
    clean = SerialSweepRunner().run(grid())
    assert clean.raise_if_failed() is clean  # chainable when all ok


def test_cycle_budget_overrun_is_structured_and_attributable():
    spec = TrialSpec(victim="gdnpeu", scheme="dom-nontso", secret=1, max_cycles=40)
    with pytest.raises(CycleBudgetError) as excinfo:
        run_trial_spec(spec)  # strict path still raises ...
    assert "victim=" in str(excinfo.value) and "seed=" in str(excinfo.value)
    outcome = run_trial_outcome(spec)  # ... the outcome path isolates
    assert outcome.status is TrialStatus.DEADLOCK
    assert outcome.error_type == "CycleBudgetError"
    assert outcome.cycle is not None and outcome.cycle >= 40


def test_injected_error_is_isolated():
    faults.install_plan(
        FaultPlan(
            (FaultSpec("error", victim="gdmshr", scheme="dom-nontso", secret=1),)
        )
    )
    result = SerialSweepRunner().run(grid())
    assert len(result.failures) == 1
    assert result.failures[0].status is TrialStatus.ERROR
    assert result.failures[0].error_type == "ValueError"


def test_bad_spec_is_isolated_not_fatal():
    bad = TrialSpec(victim="no-such-victim", scheme="dom-nontso", secret=0)
    result = SerialSweepRunner().run([bad] + grid())
    assert len(result.failures) == 1
    assert result.failures[0].error_type == "ValueError"
    assert "no-such-victim" in result.failures[0].error_message
    assert len(result) == len(grid())


# ----------------------------------------------------------------------
# retry: lost workers converge to the fault-free result
# ----------------------------------------------------------------------
def test_worker_kill_is_retried_serial(reference):
    faults.install_plan(FaultPlan((KILL_FAULT,)))
    result = SerialSweepRunner().run(grid())
    assert not result.failures
    assert list(result) == list(reference)
    # The kill really fired: exactly one trial needed a second attempt.
    assert sorted(o.attempts for o in result.outcomes) == [1] * 7 + [2]


def test_worker_kill_is_retried_parallel(reference):
    faults.install_plan(FaultPlan((KILL_FAULT,)))
    with ParallelSweepRunner(2, chunksize=1) as runner:
        result = runner.run(grid())
    assert not result.failures
    assert list(result) == list(reference)
    # The pool actually broke: the killed trial (at least) was retried.
    assert max(o.attempts for o in result.outcomes) >= 2


def test_kill_retries_exhaust_into_structured_failure(reference):
    always_kill = FaultSpec(
        "worker-kill",
        victim="gdmshr",
        scheme="fence-spectre",
        secret=0,
        max_attempts=99,
    )
    faults.install_plan(FaultPlan((always_kill,)))
    with ParallelSweepRunner(2, chunksize=1, max_retries=1) as runner:
        result = runner.run(grid())
    statuses = {f.status for f in result.failures}
    assert statuses == {TrialStatus.WORKER_LOST}
    # Everything not implicated by the repeated pool loss still finished
    # and matches the reference.
    done = {(s.victim, s.scheme, s.secret) for s in result}
    for summary in reference:
        if (summary.victim, summary.scheme, summary.secret) in done:
            assert summary in list(result)


def test_stalled_trial_times_out_parallel(reference):
    stall = FaultSpec(
        "stall",
        victim="gdnpeu",
        scheme="dom-nontso",
        secret=0,
        at_cycle=10,
        stall_seconds=30.0,
        max_attempts=99,
    )
    faults.install_plan(FaultPlan((stall,)))
    with ParallelSweepRunner(
        2, chunksize=1, max_retries=1, trial_timeout=0.5
    ) as runner:
        result = runner.run(grid())
    assert len(result.failures) == 1
    failure = result.failures[0]
    assert failure.status is TrialStatus.TIMEOUT
    assert failure.attempts == 2  # original + one retry, then gave up
    assert list(result) == _without(list(reference), stall)


# ----------------------------------------------------------------------
# checkpoint–resume
# ----------------------------------------------------------------------
def _counting_run_trial_outcome(monkeypatch):
    calls = []
    original = runner_mod.run_trial_outcome

    def wrapper(spec, attempt=0, plan=runner_mod._PLAN_UNSET):
        calls.append(spec.label())
        return original(spec, attempt, plan)

    monkeypatch.setattr(runner_mod, "run_trial_outcome", wrapper)
    return calls


def test_resume_skips_journaled_trials_and_matches(tmp_path, monkeypatch, reference):
    journal = TrialJournal(tmp_path / "sweep.jsonl")
    specs = grid()
    SerialSweepRunner().run(specs[:5], journal=journal)
    assert len(journal) == 5
    calls = _counting_run_trial_outcome(monkeypatch)
    resumed = SerialSweepRunner().run(specs, journal=journal)
    assert len(calls) == len(specs) - 5  # journaled trials never re-ran
    assert list(resumed) == list(reference)
    assert not resumed.failures
    assert len(journal) == len(specs)


def test_interrupt_mid_sweep_then_resume_is_identical(
    tmp_path, monkeypatch, reference
):
    """SIGINT surfaces as KeyboardInterrupt inside the sweep loop; the
    journal must hold every finished trial and nothing else, and the
    resumed result must equal an uninterrupted run's."""
    journal = TrialJournal(tmp_path / "sweep.jsonl")
    specs = grid()
    original = runner_mod.run_trial_outcome
    seen = []

    def interrupt_on_sixth(spec, attempt=0, plan=runner_mod._PLAN_UNSET):
        seen.append(spec.label())
        if len(seen) == 6:
            raise KeyboardInterrupt
        return original(spec, attempt, plan)

    monkeypatch.setattr(runner_mod, "run_trial_outcome", interrupt_on_sixth)
    with pytest.raises(KeyboardInterrupt):
        SerialSweepRunner().run(specs, journal=journal)
    monkeypatch.setattr(runner_mod, "run_trial_outcome", original)
    assert len(journal) == 5  # the five completed before the interrupt

    resumed = SerialSweepRunner().run(specs, journal=journal)
    assert list(resumed) == list(reference)
    assert [o.ok for o in resumed.outcomes] == [True] * len(specs)


def test_sigint_subprocess_resume_is_identical(tmp_path, reference):
    """A real SIGINT against a sweeping interpreter: the journal left
    behind resumes to the uninterrupted result."""
    journal_path = tmp_path / "sweep.jsonl"
    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    child_code = f"""
import sys
from repro.runner import SerialSweepRunner, TrialJournal, FaultPlan, FaultSpec, expand_grid
from repro.runner import faults

# Slow every trial down (wall-clock only; simulated state untouched) so
# the parent reliably lands its SIGINT mid-sweep.
faults.install_plan(FaultPlan((FaultSpec(
    "stall", at_cycle=5, stall_seconds=0.4, max_attempts=99),)))
specs = expand_grid({VICTIMS!r}, {SCHEMES!r})
SerialSweepRunner().run(specs, journal=TrialJournal({str(journal_path)!r}))
print("SWEEP-COMPLETED")
"""
    env = dict(os.environ, PYTHONPATH=src_root)
    env.pop(faults.FAULT_PLAN_ENV, None)
    child = subprocess.Popen(
        [sys.executable, "-c", child_code],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
    )
    journal = TrialJournal(journal_path)
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if len(journal.load()) >= 2 or child.poll() is not None:
            break
        time.sleep(0.02)
    child.send_signal(signal.SIGINT)
    stdout, _ = child.communicate(timeout=60)
    records_left = len(journal.load())
    if records_left < len(grid()):
        # The interrupt really landed mid-sweep.
        assert b"SWEEP-COMPLETED" not in stdout
        assert records_left >= 2
    resumed = SerialSweepRunner().run(grid(), journal=journal)
    assert list(resumed) == list(reference)
    assert not resumed.failures


# ----------------------------------------------------------------------
# the acceptance scenario: mixed faults + interrupt in one sweep
# ----------------------------------------------------------------------
def test_mixed_fault_sweep_end_to_end(tmp_path, reference):
    """One deadlocking trial, one killed worker, one mid-sweep
    interruption — the sweep completes, reports the deadlock as data,
    retries the kill deterministically, and the resumed result equals
    the uninterrupted one for every succeeded trial."""
    faults.install_plan(FaultPlan((DEADLOCK_FAULT, KILL_FAULT)))
    journal = TrialJournal(tmp_path / "sweep.jsonl")
    specs = grid()

    # "Interrupted" first run: only part of the grid gets executed.
    with ParallelSweepRunner(2, chunksize=1) as runner:
        runner.run(specs[:5], journal=journal)
    checkpointed = len(journal)
    assert 1 <= checkpointed <= 5

    # Resume over the full grid, faults still active.
    with ParallelSweepRunner(2, chunksize=1) as runner:
        result = runner.run(specs, journal=journal)

    # The deadlock is data, not an exception — and it was checkpointed,
    # so the resumed run reports it from the journal (attempts == 1).
    assert [f.status for f in result.failures] == [TrialStatus.DEADLOCK]
    assert result.failures[0].attempts == 1
    # The killed worker's trial was retried and converged.
    kill_outcome = next(
        o
        for o in result.outcomes
        if (o.victim, o.scheme, o.secret)
        == (KILL_FAULT.victim, KILL_FAULT.scheme, KILL_FAULT.secret)
    )
    assert kill_outcome.ok and kill_outcome.attempts >= 2
    # Everything that succeeded matches the uninterrupted fault-free
    # reference, in spec order.
    assert result.succeeded() == _without(list(reference), DEADLOCK_FAULT)
    assert [o.digest for o in result.outcomes] == [s.digest() for s in specs]


# ----------------------------------------------------------------------
# fault plan mechanics
# ----------------------------------------------------------------------
def test_fault_plan_json_roundtrip_and_env_export():
    plan = FaultPlan((DEADLOCK_FAULT, KILL_FAULT))
    assert FaultPlan.from_json(plan.to_json()) == plan
    faults.install_plan(plan)
    assert os.environ[faults.FAULT_PLAN_ENV] == plan.to_json()
    assert faults.current_plan() == plan
    faults.clear_plan()
    assert faults.current_plan() is None
    assert faults.FAULT_PLAN_ENV not in os.environ


def test_fault_selectors_and_attempt_window():
    spec = TrialSpec(victim="gdnpeu", scheme="dom-nontso", secret=1)
    assert DEADLOCK_FAULT.matches(spec, attempt=0)
    assert DEADLOCK_FAULT.matches(spec, attempt=5)
    once = FaultSpec("error", victim="gdnpeu", max_attempts=1)
    assert once.matches(spec, attempt=0)
    assert not once.matches(spec, attempt=1)  # retries run clean
    other = TrialSpec(victim="girs", scheme="dom-nontso", secret=1)
    assert not DEADLOCK_FAULT.matches(other, attempt=0)
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSpec("melt-the-cpu")


def test_run_trial_outcome_plan_override():
    spec = TrialSpec(victim="gdnpeu", scheme="dom-nontso", secret=1)
    faults.install_plan(FaultPlan((DEADLOCK_FAULT,)))
    assert run_trial_outcome(spec).status is TrialStatus.DEADLOCK
    # Explicit plan=None forces fault-free execution despite the plan.
    assert run_trial_outcome(spec, plan=None).ok


# ----------------------------------------------------------------------
# per-cell containment in the Table 1 driver
# ----------------------------------------------------------------------
def test_matrix_cell_on_error_report(monkeypatch):
    def explode(*args, **kwargs):
        raise DeadlockError("synthetic hang", cycle=99)

    monkeypatch.setattr("repro.core.matrix.run_victim_trial", explode)
    with pytest.raises(DeadlockError):
        evaluate_cell("gdnpeu", "vd-vd", "dom-nontso")  # strict default
    cell = evaluate_cell("gdnpeu", "vd-vd", "dom-nontso", on_error="report")
    assert not cell.vulnerable
    assert cell.error == "DeadlockError: synthetic hang"
    with pytest.raises(ValueError, match="on_error"):
        evaluate_cell("gdnpeu", "vd-vd", "dom-nontso", on_error="explode")


# ----------------------------------------------------------------------
# satellite: REPRO_SWEEP_WORKERS validation
# ----------------------------------------------------------------------
def test_malformed_workers_env_is_a_loud_error(monkeypatch):
    monkeypatch.setenv(WORKERS_ENV, "eight")
    with pytest.raises(ValueError, match=WORKERS_ENV):
        default_workers()
    with pytest.raises(ValueError, match=WORKERS_ENV):
        make_runner()
    monkeypatch.setenv(WORKERS_ENV, "0")
    with pytest.raises(ValueError, match=">= 1"):
        make_runner()
    monkeypatch.setenv(WORKERS_ENV, "-2")
    with pytest.raises(ValueError, match=">= 1"):
        make_runner()
    # Whitespace-only behaves like unset (no crash).
    monkeypatch.setenv(WORKERS_ENV, "  ")
    assert default_workers() >= 1


def test_make_runner_forwards_resilience_knobs():
    runner = make_runner(3, max_retries=5, trial_timeout=1.5)
    assert isinstance(runner, ParallelSweepRunner)
    assert runner.max_retries == 5 and runner.trial_timeout == 1.5
    runner.close()
    serial = make_runner(1, max_retries=7)
    assert isinstance(serial, SerialSweepRunner)
    assert serial.max_retries == 7
