"""Sweep-level metrics: collection, aggregation, journal round-trip,
and the JSONL dump."""

from __future__ import annotations

import json

from repro.runner import (
    SerialSweepRunner,
    expand_grid,
    read_sweep_metrics,
    run_trial_spec,
)
from repro.runner.journal import outcome_from_json, outcome_to_json
from repro.runner.metrics_io import aggregate_from_file, iter_trial_metrics
from repro.runner.runner import run_trial_outcome
from repro.runner.spec import TrialSpec


def _specs(**common):
    return expand_grid(
        ["gdnpeu"], ["dom-nontso"], (0, 1), collect_metrics=True, **common
    )


class TestCollection:
    def test_summary_carries_metrics(self):
        spec = _specs()[0]
        summary = run_trial_spec(spec)
        assert summary.metrics is not None
        assert summary.metrics["counters"]["core0.pipeline.retired"] > 0
        assert summary.metrics["gauges"]["machine.cycles"] == summary.cycles
        # Stage histograms come from the stage-filtered tracer.
        assert (
            summary.metrics["histograms"]["core0.stage.dispatch_to_issue"][
                "count"
            ]
            > 0
        )

    def test_metrics_off_by_default(self):
        spec = TrialSpec(victim="gdnpeu", scheme="dom-nontso", secret=1)
        assert run_trial_spec(spec).metrics is None

    def test_collection_does_not_perturb_results(self):
        base = TrialSpec(victim="gdnpeu", scheme="dom-nontso", secret=1)
        with_metrics = TrialSpec(
            victim="gdnpeu",
            scheme="dom-nontso",
            secret=1,
            collect_metrics=True,
        )
        a = run_trial_spec(base)
        b = run_trial_spec(with_metrics)
        assert (a.cycles, a.access_cycle, a.visible) == (
            b.cycles,
            b.access_cycle,
            b.visible,
        )


class TestAggregation:
    def test_aggregate_metrics_merges_trials(self):
        result = SerialSweepRunner().run(_specs())
        result.raise_if_failed()
        agg = result.aggregate_metrics()
        per_trial = [
            s.metrics["counters"]["core0.pipeline.retired"]
            for s in result.summaries
        ]
        assert agg.counter("core0.pipeline.retired") == sum(per_trial)
        # Gauges keep the max across trials.
        assert agg.gauge("machine.cycles") == max(
            s.cycles for s in result.summaries
        )
        # Histograms hold one per-trial mean each.
        hist = agg.histogram("core0.stage.dispatch_to_issue")
        assert hist.count == len(result.summaries)

    def test_aggregate_empty_without_collection(self):
        specs = expand_grid(["gdnpeu"], ["dom-nontso"], (1,))
        result = SerialSweepRunner().run(specs)
        assert len(result.aggregate_metrics()) == 0


class TestJournalRoundTrip:
    def test_outcome_with_metrics_survives_json(self):
        outcome = run_trial_outcome(_specs()[0])
        assert outcome.ok
        rebuilt = outcome_from_json(
            json.loads(json.dumps(outcome_to_json(outcome)))
        )
        assert rebuilt.summary.metrics == outcome.summary.metrics

    def test_outcome_without_metrics_omits_key(self):
        spec = TrialSpec(victim="gdnpeu", scheme="dom-nontso", secret=1)
        outcome = run_trial_outcome(spec)
        data = outcome_to_json(outcome)
        assert "metrics" not in data["summary"]
        assert outcome_from_json(data).summary.metrics is None


class TestMetricsDump:
    def test_run_writes_jsonl_dump(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        result = SerialSweepRunner().run(_specs(), metrics_path=str(path))
        result.raise_if_failed()
        records = read_sweep_metrics(path)
        kinds = [r["kind"] for r in records]
        assert kinds == ["trial"] * len(result.summaries) + ["aggregate"]
        assert records[-1]["trials"] == len(result.summaries)
        assert records[-1]["failures"] == 0
        # The dump's aggregate equals the in-memory aggregation.
        assert records[-1]["metrics"] == result.aggregate_metrics().to_json()

    def test_aggregate_from_file_matches(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        result = SerialSweepRunner().run(_specs(), metrics_path=str(path))
        rebuilt = aggregate_from_file(path)
        agg = result.aggregate_metrics()
        assert rebuilt.counters == agg.counters
        assert rebuilt.gauges == agg.gauges

    def test_iter_trial_metrics_skips_aggregate(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        result = SerialSweepRunner().run(_specs(), metrics_path=str(path))
        trials = list(iter_trial_metrics(path))
        assert len(trials) == len(result.summaries)
        assert all(r["kind"] == "trial" for r in trials)
