"""Content-addressed trial cache: correctness and invalidation."""

import json
import pathlib

import pytest

import repro.snapshot.schema as snapshot_schema
from repro.runner import (
    SerialSweepRunner,
    TrialCache,
    TrialSpec,
    cache_key,
)


def _specs(max_cycles=2000):
    return [
        TrialSpec(
            victim="gdnpeu",
            scheme=scheme,
            secret=secret,
            max_cycles=max_cycles,
        )
        for scheme in ("unsafe", "dom-nontso")
        for secret in (0, 1)
    ]


def _entry_files(cache_dir):
    return sorted(pathlib.Path(cache_dir).rglob("*.json"))


def _stats(**overrides):
    """Expected stats dict: all-zero baseline plus ``overrides``."""
    base = {
        "hits": 0,
        "misses": 0,
        "bypasses": 0,
        "put_errors": 0,
        "quarantined": 0,
        "evictions": 0,
    }
    base.update(overrides)
    return base


def test_cached_rerun_is_byte_identical(tmp_path):
    """Second run of the same sweep: all hits, identical outcomes, and
    the on-disk entries are untouched byte for byte."""
    specs = _specs()
    first = SerialSweepRunner(cache_dir=tmp_path).run_outcomes(specs)
    files = _entry_files(tmp_path)
    assert len(files) == len(specs)
    before = {f: f.read_bytes() for f in files}

    cache = TrialCache(tmp_path)
    replayed = [cache.get(spec) for spec in specs]
    assert cache.stats() == _stats(hits=len(specs))
    assert replayed == first

    second = SerialSweepRunner(cache_dir=tmp_path).run_outcomes(specs)
    assert second == first
    assert {f: f.read_bytes() for f in _entry_files(tmp_path)} == before


def test_cache_hit_skips_simulation(tmp_path, monkeypatch):
    """With a warm cache, the runner never touches the simulator."""
    specs = _specs()
    first = SerialSweepRunner(cache_dir=tmp_path).run_outcomes(specs)

    def boom(*args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("simulated a trial that should be cached")

    monkeypatch.setattr("repro.runner.runner.run_trial_outcome", boom)
    second = SerialSweepRunner(cache_dir=tmp_path).run_outcomes(specs)
    assert second == first


def test_schema_hash_invalidates_entries(tmp_path, monkeypatch):
    """Changing the snapshot state-schema hash (i.e. any change to a
    component's captured layout) orphans every existing entry."""
    spec = _specs()[0]
    cache = TrialCache(tmp_path)
    SerialSweepRunner(cache_dir=tmp_path).run_outcomes([spec])
    assert cache.get(spec) is not None

    monkeypatch.setattr(
        snapshot_schema, "state_schema_hash", lambda: "deadbeefdeadbeef"
    )
    stale = TrialCache(tmp_path)
    assert stale.get(spec) is None
    assert stale.stats() == _stats(misses=1)
    # Keys diverge too: old entries are orphaned, not overwritten.
    assert cache_key(spec) != cache_key(spec, "somethingelse")


def test_tampered_entry_reads_as_miss(tmp_path):
    """A corrupt or relocated entry is a miss, never a wrong answer."""
    spec = _specs()[0]
    SerialSweepRunner(cache_dir=tmp_path).run_outcomes([spec])
    (entry,) = _entry_files(tmp_path)

    data = json.loads(entry.read_text())
    data["digest"] = "0" * len(data["digest"])
    entry.write_text(json.dumps(data))
    assert TrialCache(tmp_path).get(spec) is None

    entry.write_text("{not json")
    assert TrialCache(tmp_path).get(spec) is None


def test_failures_are_not_cached(tmp_path):
    """Only ``ok`` outcomes are memoized: a deadlocked trial re-runs."""
    spec = TrialSpec(
        victim="gdnpeu", scheme="unsafe", secret=1, max_cycles=40
    )
    outcomes = SerialSweepRunner(cache_dir=tmp_path).run_outcomes([spec])
    assert not outcomes[0].ok
    assert _entry_files(tmp_path) == []
    assert TrialCache(tmp_path).get(spec) is None


def test_cache_composes_with_fork(tmp_path):
    """fork=True + cache_dir: first run forks, second run is all cache
    hits, and both match the plain cold run."""
    specs = _specs()
    cold = SerialSweepRunner().run_outcomes(specs)
    first = SerialSweepRunner(fork=True, cache_dir=tmp_path).run_outcomes(
        specs
    )
    second = SerialSweepRunner(fork=True, cache_dir=tmp_path).run_outcomes(
        specs
    )
    assert first == cold
    assert second == cold


def test_cache_key_depends_on_spec_and_schema():
    a, b = _specs()[:2]
    assert cache_key(a) == cache_key(a)
    assert cache_key(a) != cache_key(b)
    assert cache_key(a, "aaaa") != cache_key(a, "bbbb")


@pytest.mark.parametrize("shard", [True])
def test_entries_are_sharded(tmp_path, shard):
    """Entries land in two-hex-char shard directories keyed by prefix."""
    spec = _specs()[0]
    SerialSweepRunner(cache_dir=tmp_path).run_outcomes([spec])
    (entry,) = _entry_files(tmp_path)
    assert entry.parent.name == cache_key(spec)[:2]
    assert entry.stem == cache_key(spec)
