"""Fork-group planning and runner integration."""

import pytest

from repro.runner import (
    ParallelSweepRunner,
    SerialSweepRunner,
    TrialJournal,
    TrialSpec,
    expand_grid,
)
from repro.runner import faults
from repro.runner.faults import FaultPlan, FaultSpec
from repro.snapshot import group_key, plan_fork_groups, seed_is_inert


@pytest.fixture(autouse=True)
def _no_fault_plan():
    faults.clear_plan()
    yield
    faults.clear_plan()


def _grid():
    # Two base seeds x two secrets per scheme: exercises both the
    # secret-fork and the inert-seed-relabel dimensions of a group.
    return expand_grid(
        ["gdnpeu"], ["unsafe", "dom-nontso"], base_seed=1
    ) + expand_grid(["gdnpeu"], ["unsafe", "dom-nontso"], base_seed=2)


# ----------------------------------------------------------------------
# planning
# ----------------------------------------------------------------------
def test_plan_groups_by_secret_and_inert_seed():
    """Default config: seeds are inert, so every (victim, scheme) bucket
    collapses into one group spanning all secrets and seeds."""
    specs = _grid()
    assert all(seed_is_inert(s) for s in specs)
    groups, passthrough = plan_fork_groups(specs)
    assert passthrough == []
    assert sorted(len(g) for g in groups) == [4, 4]
    for group in groups:
        schemes = {specs[i].scheme for i in group}
        assert len(schemes) == 1  # never mix schemes in one group


def test_plan_passes_through_sanitized_and_noisy_trials():
    specs = [
        TrialSpec(victim="gdnpeu", scheme="unsafe", secret=s, sanitize=True)
        for s in (0, 1)
    ] + [
        TrialSpec(victim="gdnpeu", scheme="unsafe", secret=s, noise_rate=0.5)
        for s in (0, 1)
    ]
    groups, passthrough = plan_fork_groups(specs)
    assert groups == []
    assert passthrough == [0, 1, 2, 3]
    assert not seed_is_inert(specs[2])  # noise makes the seed live


def test_plan_passes_through_singletons():
    specs = [TrialSpec(victim="gdnpeu", scheme="unsafe", secret=1)]
    groups, passthrough = plan_fork_groups(specs)
    assert groups == []
    assert passthrough == [0]


def test_group_key_ignores_secret_and_inert_seed():
    a = TrialSpec(victim="gdnpeu", scheme="stt", secret=0, seed=11)
    b = TrialSpec(victim="gdnpeu", scheme="stt", secret=1, seed=99)
    c = TrialSpec(victim="gdnpeu", scheme="muontrap", secret=0, seed=11)
    assert group_key(a) == group_key(b)
    assert group_key(a) != group_key(c)


def test_dram_jitter_demotes_to_per_seed_groups():
    """With live DRAM jitter the seed matters, so grouping only spans
    secrets within each seed (the jitter RNG is inside the snapshot)."""
    from repro.memory.hierarchy import HierarchyConfig

    config = HierarchyConfig(dram_jitter=2)
    specs = [
        TrialSpec(
            victim="gdnpeu",
            scheme="unsafe",
            secret=secret,
            seed=seed,
            hierarchy_config=config,
        )
        for seed in (1, 2)
        for secret in (0, 1)
    ]
    assert not seed_is_inert(specs[0])
    groups, passthrough = plan_fork_groups(specs)
    assert passthrough == []
    assert sorted(len(g) for g in groups) == [2, 2]
    for group in groups:
        assert len({specs[i].seed for i in group}) == 1


# ----------------------------------------------------------------------
# runner integration
# ----------------------------------------------------------------------
def test_serial_fork_matches_cold():
    specs = _grid()
    assert SerialSweepRunner(fork=True).run_outcomes(
        specs
    ) == SerialSweepRunner().run_outcomes(specs)


def test_parallel_fork_matches_cold():
    specs = _grid()
    cold = SerialSweepRunner().run_outcomes(specs)
    with ParallelSweepRunner(workers=2, fork=True) as runner:
        forked = runner.run_outcomes(specs)
    assert forked == cold


def test_fork_records_outcomes_in_journal(tmp_path):
    """Forked outcomes checkpoint like cold ones: an interrupted sweep
    resumes from the journal without re-simulating."""
    specs = _grid()
    journal = TrialJournal(tmp_path / "sweep.jsonl")
    first = SerialSweepRunner(fork=True).run_outcomes(
        specs, journal=journal
    )
    assert len(journal.load()) == len(specs)

    resumed = TrialJournal(tmp_path / "sweep.jsonl")
    second = SerialSweepRunner(fork=True).run_outcomes(
        specs, journal=resumed
    )
    assert second == first


def test_fork_disabled_while_fault_plan_active():
    """Fault-injection campaigns exercise the cold path's retry logic;
    forking silently bypassing them would invalidate those tests."""
    specs = _grid()
    cold = SerialSweepRunner().run_outcomes(specs)
    faults.install_plan(
        FaultPlan(
            (
                FaultSpec(
                    "error", victim="gdnpeu", scheme="unsafe", secret=1
                ),
            )
        )
    )
    try:
        outcomes = SerialSweepRunner(fork=True).run_outcomes(specs)
    finally:
        faults.clear_plan()
    # The injected error fires on every matching trial — proof the cold
    # path (where fault injection lives) ran instead of the fork path.
    from repro.runner import TrialStatus

    for outcome, ref in zip(outcomes, cold):
        if outcome.scheme == "unsafe" and outcome.secret == 1:
            assert outcome.status is TrialStatus.ERROR
        else:
            assert outcome.summary == ref.summary


def test_run_wrapper_uses_fork_path():
    """SweepRunner.run (summary-level API) rides the same fork layer."""
    specs = _grid()
    cold = SerialSweepRunner().run(specs)
    forked = SerialSweepRunner(fork=True).run(specs)
    assert forked.summaries == cold.summaries
    assert forked.failures == cold.failures
