"""Crash consistency of the durability layer under real SIGKILL.

The I/O fault plan (``repro.runner.faults``) delivers a *real*
``SIGKILL`` to a subprocess exactly mid-write — half the payload on
disk, no cleanup — and the parent then asserts the recovery
guarantees:

* a cache publish killed mid-write leaves only an unpublished temp
  file: the torn bytes are never served, and GC sweeps the debris;
* a published-then-corrupted cache entry is quarantined on first read
  (renamed ``*.corrupt``), re-executed, and never consulted again;
* a journal append killed mid-write loses exactly the in-flight
  record: the torn line is skipped on load and a resumed sweep
  converges to a result bit-identical to an uninterrupted run.

Also here: the jittered-backoff bounds and the journal's opt-in fsync
mode (both part of the same robustness PR).
"""

import json
import os
import random
import signal
import subprocess
import sys

import pytest

from repro.runner import faults
from repro.runner.cache import TrialCache
from repro.runner.journal import TrialJournal
from repro.runner.runner import (
    SerialSweepRunner,
    _BACKOFF_BASE,
    _BACKOFF_CAP,
    backoff_delay,
    run_trial_outcome,
)
from repro.runner.spec import expand_grid

SPECS = expand_grid(["gdnpeu"], ["unsafe", "dom-nontso"], (0, 1))

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


@pytest.fixture(autouse=True)
def _no_leftover_fs_plan():
    faults.clear_fs_plan()
    yield
    faults.clear_fs_plan()


def _run_killed_child(script: str, plan: faults.FSFaultPlan) -> None:
    """Run ``script`` in a subprocess under ``plan``; it must die by
    SIGKILL (the injected mid-write kill actually fired)."""
    env = dict(os.environ)
    env[faults.FS_FAULT_PLAN_ENV] = plan.to_json()
    env["PYTHONPATH"] = os.path.abspath(REPO_SRC) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    proc = subprocess.run(
        [sys.executable, "-c", script], env=env, timeout=120,
        capture_output=True,
    )
    assert proc.returncode == -signal.SIGKILL, (
        proc.returncode,
        proc.stdout,
        proc.stderr,
    )


# ---------------------------------------------------------------------
# cache publish crash
# ---------------------------------------------------------------------
def _cache_files(cache_dir):
    return sorted(
        name
        for _, _, files in os.walk(cache_dir)
        for name in files
    )


def test_sigkill_mid_cache_publish_never_serves_torn_bytes(tmp_path):
    cache_dir = str(tmp_path / "cache")
    script = f"""
from repro.runner.cache import TrialCache
from repro.runner.runner import run_trial_outcome
from repro.runner.spec import expand_grid
spec = expand_grid(["gdnpeu"], ["unsafe"], (0,))[0]
outcome = run_trial_outcome(spec, attempt=0)
TrialCache({cache_dir!r}, durable=True).put(spec, outcome)
raise SystemExit("put survived an injected mid-publish kill")
"""
    _run_killed_child(
        script,
        faults.FSFaultPlan(
            faults=(
                faults.FSFaultSpec(faults.FS_KILL, op=faults.OP_CACHE_PUBLISH),
            )
        ),
    )
    # On-disk aftermath: a torn temp file, no published entry.
    leftovers = _cache_files(cache_dir)
    assert leftovers, "the kill should have left a torn temp file behind"
    assert all(name.startswith(".tmp-") for name in leftovers)
    # The torn bytes are invisible to readers; the trial re-runs and the
    # re-published entry round-trips exactly.
    spec = expand_grid(["gdnpeu"], ["unsafe"], (0,))[0]
    cache = TrialCache(cache_dir, durable=True)
    assert cache.get(spec) is None
    outcome = run_trial_outcome(spec, attempt=0)
    assert cache.put(spec, outcome)
    assert cache.get(spec) == outcome
    assert cache.stats()["put_errors"] == 0
    # GC (with no grace, for the test) sweeps the orphaned temp file.
    cache.gc(tmp_grace=0.0)
    assert all(
        not name.startswith(".tmp-") for name in _cache_files(cache_dir)
    )


def test_kill_mid_publish_with_existing_entry_keeps_old_entry(tmp_path):
    """The publish is atomic: dying mid-write of a *replacement* entry
    must leave the previously published one intact and servable."""
    cache_dir = str(tmp_path / "cache")
    spec = expand_grid(["gdnpeu"], ["unsafe"], (0,))[0]
    outcome = run_trial_outcome(spec, attempt=0)
    assert TrialCache(cache_dir, durable=True).put(spec, outcome)
    script = f"""
from repro.runner.cache import TrialCache
from repro.runner.runner import run_trial_outcome
from repro.runner.spec import expand_grid
spec = expand_grid(["gdnpeu"], ["unsafe"], (0,))[0]
outcome = run_trial_outcome(spec, attempt=0)
TrialCache({cache_dir!r}, durable=True).put(spec, outcome)
raise SystemExit("unreachable")
"""
    _run_killed_child(
        script,
        faults.FSFaultPlan(
            faults=(
                faults.FSFaultSpec(faults.FS_KILL, op=faults.OP_CACHE_PUBLISH),
            )
        ),
    )
    cache = TrialCache(cache_dir)
    assert cache.get(spec) == outcome
    assert cache.stats()["hits"] == 1
    assert cache.stats()["quarantined"] == 0


def test_corrupted_published_entry_quarantined_and_reexecuted(tmp_path):
    cache_dir = str(tmp_path / "cache")
    spec = SPECS[0]
    outcome = run_trial_outcome(spec, attempt=0)
    cache = TrialCache(cache_dir)
    assert cache.put(spec, outcome)
    [entry] = [
        os.path.join(root, name)
        for root, _, files in os.walk(cache_dir)
        for name in files
    ]
    with open(entry, "r+b") as fh:
        fh.truncate(os.path.getsize(entry) // 2)
    reader = TrialCache(cache_dir)
    assert reader.get(spec) is None  # never served torn
    assert reader.stats()["quarantined"] == 1
    assert os.path.exists(entry + ".corrupt")
    assert not os.path.exists(entry)
    # Re-execution republishes; the quarantined file is never re-read.
    assert reader.put(spec, run_trial_outcome(spec, attempt=0))
    assert reader.get(spec) == outcome
    # GC removes the quarantined debris.
    reader.gc()
    assert not os.path.exists(entry + ".corrupt")


def test_structurally_corrupt_entry_quarantined(tmp_path):
    """Valid JSON that is not a valid entry must quarantine too."""
    cache_dir = str(tmp_path / "cache")
    spec = SPECS[0]
    cache = TrialCache(cache_dir)
    assert cache.put(spec, run_trial_outcome(spec, attempt=0))
    [entry] = [
        os.path.join(root, name)
        for root, _, files in os.walk(cache_dir)
        for name in files
    ]
    from repro.snapshot.schema import state_schema_hash

    with open(entry, "w") as fh:
        # Right schema and digest (so neither freshness check rejects
        # it as a plain miss), but a garbage outcome payload.
        json.dump(
            {
                "schema": state_schema_hash(),
                "digest": spec.digest(),
                "outcome": 3,
            },
            fh,
        )
    assert TrialCache(cache_dir).get(spec) is None
    assert os.path.exists(entry + ".corrupt")


# ---------------------------------------------------------------------
# journal append crash + resume
# ---------------------------------------------------------------------
def test_sigkill_mid_journal_append_resumes_bit_identical(tmp_path):
    journal_path = str(tmp_path / "sweep.jsonl")
    script = f"""
from repro.runner.journal import TrialJournal
from repro.runner.runner import run_trial_outcome
from repro.runner.spec import expand_grid
specs = expand_grid(["gdnpeu"], ["unsafe", "dom-nontso"], (0, 1))
journal = TrialJournal({journal_path!r}, fsync=True)
for spec in specs:
    journal.record(run_trial_outcome(spec, attempt=0))
raise SystemExit("unreachable: the second append must kill the process")
"""
    _run_killed_child(
        script,
        faults.FSFaultPlan(
            faults=(
                faults.FSFaultSpec(
                    faults.FS_KILL, op=faults.OP_JOURNAL_APPEND, after=1
                ),
            )
        ),
    )
    # Exactly one acknowledged record survives; the torn second line is
    # on disk but skipped by the tolerant loader.
    with open(journal_path, "rb") as fh:
        raw = fh.read()
    assert not raw.endswith(b"\n"), "expected a torn (unterminated) line"
    journal = TrialJournal(journal_path)
    loaded = journal.load()
    assert set(loaded) == {SPECS[0].digest()}
    # Resume: the journaled sweep converges to the uninterrupted result.
    resumed = SerialSweepRunner().run(SPECS, journal=journal)
    clean = SerialSweepRunner().run(SPECS)
    assert [o.summary for o in resumed.outcomes] == [
        o.summary for o in clean.outcomes
    ]
    assert [o.status for o in resumed.outcomes] == [
        o.status for o in clean.outcomes
    ]
    # And the journal now holds every digest, once each.
    assert set(TrialJournal(journal_path).load()) == {
        s.digest() for s in SPECS
    }


def test_journal_fsync_mode_round_trips(tmp_path):
    journal = TrialJournal(tmp_path / "j.jsonl", fsync=True)
    assert journal.fsync is True
    outcome = run_trial_outcome(SPECS[0], attempt=0)
    journal.record(outcome)
    assert journal.load()[SPECS[0].digest()] == outcome
    # Default stays off: benchmarks measure non-durable throughput.
    assert TrialJournal(tmp_path / "k.jsonl").fsync is False


# ---------------------------------------------------------------------
# jittered backoff
# ---------------------------------------------------------------------
def test_backoff_jitter_bounds():
    for round_no in range(1, 8):
        base = min(_BACKOFF_CAP, _BACKOFF_BASE * 2 ** (round_no - 1))
        for seed in range(20):
            delay = backoff_delay(round_no, rng=random.Random(seed))
            assert 0.5 * base <= delay <= base


def test_backoff_jitter_decorrelates():
    """Two workers entering the same retry round must not sleep the
    same wall-clock time (that synchronized-wave shape is what the
    jitter exists to break)."""
    delays = {
        backoff_delay(3, rng=random.Random(seed)) for seed in range(16)
    }
    assert len(delays) > 1


def test_backoff_deterministic_given_rng():
    assert backoff_delay(2, rng=random.Random(7)) == backoff_delay(
        2, rng=random.Random(7)
    )
