"""Checkpoint-journal format guarantees.

The journal must roundtrip a TrialOutcome *exactly* (frozen-dataclass
equality, including every VisibleAccess in the summary): resume
correctness rests on a journaled summary being indistinguishable from a
freshly computed one.  It must also survive the ways an interrupted
sweep can mangle the file — torn final lines, duplicates, junk.
"""

import json

import pytest

from repro.runner import (
    TrialJournal,
    TrialOutcome,
    TrialSpec,
    TrialStatus,
    run_trial_outcome,
    run_trial_spec,
)
from repro.runner.journal import (
    JOURNALED_STATUSES,
    outcome_from_json,
    outcome_to_json,
)


@pytest.fixture
def ok_outcome():
    return run_trial_outcome(
        TrialSpec(victim="gdnpeu", scheme="dom-nontso", secret=1, seed=7),
        plan=None,
    )


def make_failure(status=TrialStatus.DEADLOCK):
    return TrialOutcome(
        digest="abc123",
        victim="gdnpeu",
        scheme="dom-nontso",
        secret=0,
        seed=3,
        status=status,
        attempts=2,
        error_type="DeadlockError",
        error_message="injected deadlock at cycle 50",
        cycle=50,
    )


def test_ok_outcome_json_roundtrip_is_exact(ok_outcome):
    assert ok_outcome.ok and ok_outcome.summary is not None
    restored = outcome_from_json(json.loads(json.dumps(outcome_to_json(ok_outcome))))
    assert restored == ok_outcome
    # The summary must be usable identically (ints stayed ints, enum
    # kinds survived, line ordering semantics intact).
    assert restored.summary.ab_order() == ok_outcome.summary.ab_order()
    assert restored.summary.access_cycle == ok_outcome.summary.access_cycle


def test_failure_outcome_json_roundtrip():
    failure = make_failure()
    restored = outcome_from_json(json.loads(json.dumps(outcome_to_json(failure))))
    assert restored == failure
    assert restored.status is TrialStatus.DEADLOCK


def test_journal_record_and_load(tmp_path, ok_outcome):
    journal = TrialJournal(tmp_path / "sweep.jsonl")
    journal.record(ok_outcome)
    journal.record(make_failure())
    records = journal.load()
    assert records[ok_outcome.digest] == ok_outcome
    assert records["abc123"] == make_failure()
    assert ok_outcome.digest in journal
    assert len(journal) == 2


def test_journal_last_record_wins(tmp_path, ok_outcome):
    journal = TrialJournal(tmp_path / "sweep.jsonl")
    first = make_failure()
    journal.record(first)
    # A replayed record for the same digest (attempt count differs).
    second = TrialOutcome(
        digest=first.digest,
        victim=first.victim,
        scheme=first.scheme,
        secret=first.secret,
        seed=first.seed,
        status=first.status,
        attempts=3,
        error_type=first.error_type,
        error_message=first.error_message,
        cycle=first.cycle,
    )
    journal.record(second)
    assert journal.load()[first.digest].attempts == 3


def test_journal_tolerates_torn_and_corrupt_lines(tmp_path, ok_outcome):
    path = tmp_path / "sweep.jsonl"
    journal = TrialJournal(path)
    journal.record(ok_outcome)
    with open(path, "a") as fh:
        fh.write("this is not json\n")
        fh.write('{"v": 1, "digest": "missing-fields"}\n')
        # A torn final line: the process died mid-write.
        fh.write('{"v": 1, "digest": "torn", "victim": "gd')
    records = journal.load()
    assert list(records) == [ok_outcome.digest]


def test_journal_missing_file_is_empty(tmp_path):
    journal = TrialJournal(tmp_path / "never-written.jsonl")
    assert journal.load() == {}
    assert len(journal) == 0


def test_transient_statuses_are_not_journaled():
    assert TrialStatus.OK in JOURNALED_STATUSES
    assert TrialStatus.DEADLOCK in JOURNALED_STATUSES
    assert TrialStatus.ERROR in JOURNALED_STATUSES
    # Transient infrastructure failures must re-run on resume.
    assert TrialStatus.TIMEOUT not in JOURNALED_STATUSES
    assert TrialStatus.WORKER_LOST not in JOURNALED_STATUSES


def test_spec_digest_is_stable_and_discriminating():
    a = TrialSpec(victim="gdnpeu", scheme="dom-nontso", secret=1, seed=7)
    b = TrialSpec(victim="gdnpeu", scheme="dom-nontso", secret=1, seed=7)
    c = TrialSpec(victim="gdnpeu", scheme="dom-nontso", secret=0, seed=7)
    assert a.digest() == b.digest()
    assert a.digest() != c.digest()
    # Pinned: changing the digest scheme silently invalidates every
    # existing journal, so it must be a deliberate decision.
    assert a.digest() == TrialSpec(
        victim="gdnpeu", scheme="dom-nontso", secret=1, seed=7
    ).digest()
