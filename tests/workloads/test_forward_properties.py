"""Generator soundness for the forward-interference gadget family.

:func:`repro.workloads.random_forward_gadget` promises two properties
for *every* seed and config:

* the built program is valid — :class:`~repro.isa.program.Program`'s
  ``__post_init__`` validation accepts it (labels resolve, registers
  are defined before use, the victim branch exists);
* the static detector flags it —
  :func:`repro.staticcheck.detectors.detect_forward_interference`
  reports the family, because the generated window always contains an
  op tainted by the speculative secret load sharing a port with an
  older plausibly-pending instruction.

Property-tested here so the gadget-synthesis direction (ROADMAP) can
trust the generator as a corpus source without per-sample vetting.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.isa.instructions import OpClass
from repro.staticcheck.analyzer import analyze_victim
from repro.staticcheck.report import FAMILY_FORWARD, Severity
from repro.workloads import ForwardGadgetConfig, random_forward_gadget

configs = st.builds(
    ForwardGadgetConfig,
    max_prelude=st.integers(min_value=0, max_value=8),
    max_followers=st.integers(min_value=0, max_value=8),
    max_junk=st.integers(min_value=0, max_value=6),
    min_pending_latency=st.integers(min_value=5, max_value=10),
    max_latency=st.integers(min_value=12, max_value=80),
)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1), config=configs)
def test_generated_program_is_valid(seed, config):
    """Program.__post_init__ ran without raising (construction IS the
    validation), and the spec is victim-shaped: a resolvable branch
    slot with a window behind it."""
    spec = random_forward_gadget(seed, config)
    program = spec.program
    assert 0 <= spec.branch_slot < len(program)
    assert program.at(spec.branch_slot).opclass is OpClass.BRANCH
    assert program.at(len(program) - 1).opclass is OpClass.HALT
    # The mispredicted path must contain the tainted contender.
    names = [inst.name for inst in program]
    assert "fwd contender" in names
    assert names.index("fwd contender") > spec.branch_slot


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1), config=configs)
def test_generated_gadget_is_always_flagged(seed, config):
    """Soundness against the static detector: every generated gadget
    carries a forward-interference finding pairing the younger tainted
    contender with the older pending op on the same port."""
    spec = random_forward_gadget(seed, config)
    report = analyze_victim(spec)
    forward = [f for f in report.findings if f.family == FAMILY_FORWARD]
    assert forward, report.render()
    assert all(f.severity in tuple(Severity) for f in forward)


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_generator_is_deterministic(seed):
    """Same seed, same gadget — byte-for-byte identical instruction
    stream (the corpus must be reproducible from seeds alone)."""
    a = random_forward_gadget(seed)
    b = random_forward_gadget(seed)
    assert a.name == b.name
    assert len(a.program) == len(b.program)
    for ia, ib in zip(a.program, b.program):
        assert ia.name == ib.name
        assert ia.opclass is ib.opclass
        assert ia.latency == ib.latency
        assert ia.port == ib.port
        assert ia.srcs == ib.srcs
