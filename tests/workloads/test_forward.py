"""The forward-interference victim kit: registry, channel, receiver,
and the forward symni observables.

The family contract ("It's a Trap!"): the monitored loads A/B are
OLDER than the victim branch — they execute and retire under every
prediction outcome — and only younger-window resource interference
moves their timing.  So every victim must leak on the unsafe baseline
and the invisible-speculation schemes, stay clean under fences, and
decode through :class:`repro.workloads.ForwardReceiver`.
"""

from __future__ import annotations

import pytest

from repro.core.victims import VICTIM_FACTORIES, victim_by_name
from repro.isa.instructions import OpClass
from repro.staticcheck.crossval import dynamic_signals
from repro.symni.executor import SymniExecutor
from repro.symni.model import model_for
from repro.symni.observables import KIND_FWD_PREEMPT, KIND_PORT_BUSY
from repro.workloads import (
    FORWARD_VICTIM_FACTORIES,
    FORWARD_VICTIMS,
    ForwardReceiver,
    forward_eu_victim,
)


def test_forward_victims_registered_globally():
    """Sweep specs reference victims by name; the forward family must
    resolve through the same global registry as everything else."""
    assert set(FORWARD_VICTIMS) == {"fwd-eu", "fwd-mshr", "fwd-rs"}
    for name in FORWARD_VICTIMS:
        assert name in VICTIM_FACTORIES
        spec = victim_by_name(name)
        assert spec.name == name
        assert spec.gadget == "forward"
        # The channel is read off older instructions: monitored line A
        # must exist and be produced BEFORE the victim branch.
        assert spec.line_a is not None
        assert spec.program.at(spec.branch_slot).opclass is OpClass.BRANCH


def test_factory_kwargs_forward_through_registry():
    spec = victim_by_name("fwd-eu", slow_latency=90, followers=2)
    direct = forward_eu_victim(slow_latency=90, followers=2)
    assert len(spec.program) == len(direct.program)


def test_monitored_loads_are_older_than_branch():
    """The defining property of forward interference: the timed loads
    retire regardless of the prediction — they sit before the branch."""
    for name in FORWARD_VICTIMS:
        spec = victim_by_name(name)
        load_slots = [
            s
            for s, inst in enumerate(spec.program)
            if inst.name in ("load A", "load B")
        ]
        assert load_slots, name
        assert all(s < spec.branch_slot for s in load_slots), name


@pytest.mark.parametrize("name", sorted(FORWARD_VICTIMS))
def test_forward_victims_leak_where_expected(name):
    spec = victim_by_name(name)
    assert dynamic_signals(spec, "unsafe"), f"{name} silent on unsafe"
    assert dynamic_signals(spec, "invisispec-spectre"), (
        f"{name} silent under invisible speculation"
    )
    assert not dynamic_signals(spec, "fence-spectre"), (
        f"{name} leaks through a full fence"
    )


@pytest.mark.parametrize("name", sorted(FORWARD_VICTIMS))
def test_receiver_decodes_the_planted_secret(name):
    spec = victim_by_name(name)
    receiver = ForwardReceiver.calibrate(spec, "invisispec-spectre")
    assert receiver.calibration.usable
    assert receiver.decode_trial("invisispec-spectre", 0) == 0
    assert receiver.decode_trial("invisispec-spectre", 1) == 1


def test_receiver_reports_no_signal_under_a_fence():
    spec = victim_by_name("fwd-eu")
    receiver = ForwardReceiver.calibrate(spec, "fence-spectre")
    assert not receiver.calibration.usable
    assert receiver.decode_trial("fence-spectre", 1) is None


def test_receiver_requires_a_monitored_line():
    spec = victim_by_name("girs")  # line_a is None: nothing to time
    assert spec.line_a is None
    with pytest.raises(ValueError):
        ForwardReceiver.calibrate(spec, "unsafe")


def test_fwd_preempt_observable_attributes_older_slots():
    """The symni forward observable: each port-busy interval under an
    invisible scheme is twinned with a fwd-preempt event naming the
    older in-flight slots it delays — and those slots are exactly the
    victim's pre-branch f-chain."""
    spec = victim_by_name("fwd-eu")
    result = SymniExecutor.for_victim(
        spec, model_for("invisispec-spectre")
    ).run()
    f_slots = {
        s
        for s, inst in enumerate(spec.program)
        if (inst.name or "").startswith("f") and s < spec.branch_slot
    }
    seen = []
    for trace in result.traces:
        events = [o for o in trace if o.kind == KIND_FWD_PREEMPT]
        busy = [o for o in trace if o.kind == KIND_PORT_BUSY]
        assert len(events) == len(busy)  # twinned 1:1
        for obs in events:
            assert obs.older_slots, obs.describe()
            assert set(obs.older_slots) <= f_slots
            seen.append(obs)
    assert seen
    # Secret-dependent occupancy: the two lanes' fwd-preempt durations
    # must differ (that difference IS the transmitted bit).
    durations = {
        tuple(o.duration for o in trace if o.kind == KIND_FWD_PREEMPT)
        for trace in result.traces
    }
    assert len(durations) == 2


def test_fence_emits_no_forward_observables():
    spec = victim_by_name("fwd-eu")
    result = SymniExecutor.for_victim(spec, model_for("fence-spectre")).run()
    for trace in result.traces:
        assert all(o.kind != KIND_FWD_PREEMPT for o in trace)
        assert all(o.kind != KIND_PORT_BUSY for o in trace)


def test_kit_factories_are_the_registry_entries():
    for name, factory in FORWARD_VICTIM_FACTORIES.items():
        assert factory().name == name
