"""Random program generator tests."""

import pytest

from repro.isa import Interpreter
from repro.isa.instructions import OpClass
from repro.workloads import RandomProgramConfig, random_program


class TestRandomProgram:
    def test_deterministic_for_seed(self):
        a = random_program(7)
        b = random_program(7)
        assert len(a) == len(b)
        assert [i.opclass for i in a] == [i.opclass for i in b]

    def test_different_seeds_differ(self):
        a = random_program(1)
        b = random_program(2)
        assert [i.name for i in a] != [i.name for i in b]

    @pytest.mark.parametrize("seed", range(0, 50, 7))
    def test_always_terminates(self, seed):
        result = Interpreter(random_program(seed), max_instructions=50_000).run()
        assert result.halted

    def test_mix_knobs(self):
        cfg = RandomProgramConfig(length=60, branch_probability=0.0)
        program = random_program(5, cfg)
        assert not any(i.opclass is OpClass.BRANCH for i in program)

    def test_contains_slow_port0_ops_sometimes(self):
        cfg = RandomProgramConfig(length=200, slow_alu_probability=0.5)
        program = random_program(9, cfg)
        assert any(
            i.opclass is OpClass.ALU and i.port == 0 and i.latency > 1
            for i in program
        )

    def test_branches_are_forward_only(self):
        program = random_program(11)
        for slot, inst in enumerate(program):
            if inst.opclass is OpClass.BRANCH:
                assert program.branch_target_slot(slot) > slot
