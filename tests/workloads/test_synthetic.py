"""Synthetic workload suite tests: every kernel runs correctly on both
the interpreter and the pipeline, and has the bottleneck it claims."""

import pytest

from repro.isa import Interpreter
from repro.workloads.synthetic import SyntheticWorkload, synthetic_suite, workload_by_name

from tests.conftest import run_on_scheme


ALL = synthetic_suite()


class TestSuiteStructure:
    def test_suite_nonempty_and_named(self):
        names = [w.name for w in ALL]
        assert len(names) == len(set(names))
        assert len(names) >= 6

    def test_lookup_by_name(self):
        assert workload_by_name("stream").name == "stream"
        with pytest.raises(KeyError):
            workload_by_name("spec2017")


@pytest.mark.parametrize("workload", ALL, ids=lambda w: w.name)
class TestEveryWorkload:
    def test_interpreter_and_pipeline_agree(self, workload):
        expected = Interpreter(workload.program, max_instructions=200_000).run(
            memory=workload.memory_image
        )
        machine, core = run_on_scheme(
            workload.program, None, memory=workload.memory_image, max_cycles=500_000
        )
        assert core.halted
        assert (
            core.regfile.get(workload.checksum_reg)
            == expected.registers.get(workload.checksum_reg)
        )

    def test_checksum_is_data_dependent(self, workload):
        """The checksum must reflect the memory image (guards against
        dead kernels that defenses could trivially skip)."""
        expected = Interpreter(workload.program, max_instructions=200_000).run(
            memory=workload.memory_image
        )
        if not workload.memory_image:
            pytest.skip("pure-compute kernel")
        perturbed_image = dict(workload.memory_image)
        key = next(iter(perturbed_image))
        perturbed_image[key] += 1
        perturbed = Interpreter(
            workload.program, max_instructions=200_000
        ).run(memory=perturbed_image)
        assert (
            perturbed.registers.get(workload.checksum_reg)
            != expected.registers.get(workload.checksum_reg)
        )


class TestBottlenecks:
    def test_pointer_chase_is_serial(self):
        machine, core = run_on_scheme(
            workload_by_name("pointer_chase").program,
            None,
            memory=workload_by_name("pointer_chase").memory_image,
            max_cycles=500_000,
        )
        # ~latency-bound: ipc far below 1
        assert core.stats.ipc < 0.1

    def test_ilp_is_fast(self):
        machine, core = run_on_scheme(workload_by_name("ilp").program, None)
        assert core.stats.ipc > 1.0

    def test_branchy_mispredicts(self):
        w = workload_by_name("branchy")
        machine, core = run_on_scheme(w.program, None, memory=w.memory_image)
        assert core.stats.mispredicts > 5

    def test_sqrt_kernel_uses_nonpipelined_port(self):
        w = workload_by_name("sqrt_kernel")
        machine, core = run_on_scheme(w.program, None)
        assert core.eus[0].issues >= 32
