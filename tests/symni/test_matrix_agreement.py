"""Acceptance: all 16 schemes, every verdict grounded, zero silent drops.

The contract of the PR: at the default bound, each registry scheme gets
either a clean symbolic verdict or a counterexample the cycle-level
simulator replays; and where symbolic and dynamic verdicts disagree the
checker must say so explicitly (abstraction-gap / reconciliation rows),
never drop the case.
"""

import pytest

from repro.core.victims import victim_by_name
from repro.schemes.registry import SCHEME_FACTORIES
from repro.staticcheck.crossval import dynamic_signals, reconcile_verdicts
from repro.symni.checker import (
    STATUS_CLEAN,
    STATUS_CONFIRMED,
    STATUS_GAP,
    check_victim,
)

ALL_SCHEMES = sorted(SCHEME_FACTORIES)


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_gdnpeu_verdict_grounded_for_every_scheme(scheme):
    """Every scheme: clean proof or a simulator-replayed counterexample."""
    verdict = check_victim("gdnpeu", scheme)
    assert verdict.status in (STATUS_CLEAN, STATUS_CONFIRMED, STATUS_GAP)
    if verdict.status == STATUS_CONFIRMED:
        assert verdict.replay is not None and verdict.replay.reproduced
    if verdict.status == STATUS_GAP:
        # A gap is an explicit record, with the evidence attached.
        assert verdict.replay is not None
        assert verdict.counterexample is not None
        assert any("abstraction gap" in note for note in verdict.notes)


@pytest.mark.parametrize(
    "victim,scheme,expected",
    [
        ("gdnpeu", "dom-nontso", STATUS_CONFIRMED),
        ("gdnpeu", "stt", STATUS_CLEAN),
        ("gdnpeu", "priority", STATUS_CLEAN),
        ("gdmshr", "invisispec-spectre", STATUS_CONFIRMED),
        ("gdmshr", "dom-nontso", STATUS_CLEAN),
        ("girs", "dom-nontso", STATUS_CONFIRMED),
        ("girs", "safespec-wfb", STATUS_CLEAN),
        ("gdnpeu-arith", "dom-nontso-vp", STATUS_CONFIRMED),
        ("gdnpeu-architectural", "stt", STATUS_CONFIRMED),
    ],
)
def test_table1_calibration_rows(victim, scheme, expected):
    assert check_victim(victim, scheme).status == expected


def test_symbolic_agrees_with_dynamic_on_builtins():
    """Reconciliation over a representative slice: symbolic clean iff no
    dynamic signal, with any disagreement surfaced as an explicit row."""
    rows = reconcile_verdicts(
        victims=["gdnpeu", "girs"],
        schemes=["unsafe", "dom-nontso", "fence-spectre", "stt"],
    )
    assert len(rows) == 8
    for row in rows:
        assert row.agrees, f"{row.victim}/{row.scheme}: {row.detail}"


def test_clean_symbolic_verdict_matches_quiet_simulator():
    """Spot-check the dynamic side of a clean verdict directly."""
    spec = victim_by_name("gdnpeu")
    assert check_victim("gdnpeu", "fence-spectre").status == STATUS_CLEAN
    assert dynamic_signals(spec, "fence-spectre") == []
