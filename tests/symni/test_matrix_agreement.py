"""Acceptance: all 16 schemes, every verdict grounded, zero silent drops.

The contract of the PR: at the default bound, each registry scheme gets
either a clean symbolic verdict or a counterexample the cycle-level
simulator replays; and where symbolic and dynamic verdicts disagree the
checker must say so explicitly (abstraction-gap / reconciliation rows),
never drop the case.
"""

import pytest

from repro.core.victims import victim_by_name
from repro.schemes.registry import SCHEME_FACTORIES
from repro.staticcheck.crossval import dynamic_signals, reconcile_verdicts
from repro.symni.checker import (
    STATUS_CLEAN,
    STATUS_CONFIRMED,
    STATUS_GAP,
    check_victim,
)
from repro.workloads import FORWARD_VICTIMS

ALL_SCHEMES = sorted(SCHEME_FACTORIES)


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_gdnpeu_verdict_grounded_for_every_scheme(scheme):
    """Every scheme: clean proof or a simulator-replayed counterexample."""
    verdict = check_victim("gdnpeu", scheme)
    assert verdict.status in (STATUS_CLEAN, STATUS_CONFIRMED, STATUS_GAP)
    if verdict.status == STATUS_CONFIRMED:
        assert verdict.replay is not None and verdict.replay.reproduced
    if verdict.status == STATUS_GAP:
        # A gap is an explicit record, with the evidence attached.
        assert verdict.replay is not None
        assert verdict.counterexample is not None
        assert any("abstraction gap" in note for note in verdict.notes)


@pytest.mark.parametrize(
    "victim,scheme,expected",
    [
        ("gdnpeu", "dom-nontso", STATUS_CONFIRMED),
        ("gdnpeu", "stt", STATUS_CLEAN),
        ("gdnpeu", "priority", STATUS_CLEAN),
        ("gdmshr", "invisispec-spectre", STATUS_CONFIRMED),
        ("gdmshr", "dom-nontso", STATUS_CLEAN),
        ("girs", "dom-nontso", STATUS_CONFIRMED),
        ("girs", "safespec-wfb", STATUS_CLEAN),
        ("gdnpeu-arith", "dom-nontso-vp", STATUS_CONFIRMED),
        ("gdnpeu-architectural", "stt", STATUS_CONFIRMED),
        # Forward interference ("It's a Trap!"): the EU-latency channel
        # survives delay-on-miss AND value prediction, the MSHR channel
        # needs speculative misses, the RS channel dies to value
        # prediction, and STT/priority block all three.
        ("fwd-eu", "dom-nontso", STATUS_CONFIRMED),
        ("fwd-eu", "dom-nontso-vp", STATUS_CONFIRMED),
        ("fwd-eu", "stt", STATUS_CLEAN),
        ("fwd-mshr", "invisispec-spectre", STATUS_CONFIRMED),
        ("fwd-mshr", "dom-nontso", STATUS_CLEAN),
        ("fwd-rs", "safespec-wfb", STATUS_CONFIRMED),
        ("fwd-rs", "dom-nontso-vp", STATUS_CLEAN),
        ("fwd-rs", "priority", STATUS_CLEAN),
    ],
)
def test_table1_calibration_rows(victim, scheme, expected):
    assert check_victim(victim, scheme).status == expected


def test_symbolic_agrees_with_dynamic_on_builtins():
    """Reconciliation over a representative slice: symbolic clean iff no
    dynamic signal, with any disagreement surfaced as an explicit row."""
    rows = reconcile_verdicts(
        victims=["gdnpeu", "girs"],
        schemes=["unsafe", "dom-nontso", "fence-spectre", "stt"],
    )
    assert len(rows) == 8
    for row in rows:
        assert row.agrees, f"{row.victim}/{row.scheme}: {row.detail}"


def test_clean_symbolic_verdict_matches_quiet_simulator():
    """Spot-check the dynamic side of a clean verdict directly."""
    spec = victim_by_name("gdnpeu")
    assert check_victim("gdnpeu", "fence-spectre").status == STATUS_CLEAN
    assert dynamic_signals(spec, "fence-spectre") == []


@pytest.mark.parametrize("victim", sorted(FORWARD_VICTIMS))
def test_forward_three_way_agreement_full_matrix(victim):
    """Every (forward victim, scheme) pair three-way agrees — static
    detector, replayed symbolic verdict and dynamic signal — with zero
    abstraction-gap records: each symbolic counterexample must be
    reproduced by the simulator, not merely asserted."""
    rows = reconcile_verdicts([victim], schemes=ALL_SCHEMES, replay=True)
    assert len(rows) == len(ALL_SCHEMES)
    for row in rows:
        assert row.agrees, f"{row.victim}/{row.scheme}: {row.detail}"
        # The static detector flags every forward victim (the families
        # column is scheme-independent and never empty here).
        assert row.static_flagged
        assert "forward-interference" in row.static_families
        # Zero unexplained gaps: a symbolically dirty pair must come
        # back leak-confirmed (replay reproduced), never abstraction-gap.
        assert row.symbolic_status != STATUS_GAP, (
            f"{row.victim}/{row.scheme}: {row.detail}"
        )
        if row.symbolic_status == STATUS_CONFIRMED:
            assert row.dynamic_kinds, f"{row.victim}/{row.scheme}"
    leaking = {r.scheme for r in rows if r.symbolic_status != STATUS_CLEAN}
    # The acceptance floor: forward victims break the unsafe baseline
    # and every invisible-speculation scheme.
    assert {
        "unsafe",
        "cleanupspec",
        "invisispec-spectre",
        "invisispec-futuristic",
        "muontrap",
        "safespec-wfb",
        "safespec-wfc",
    } <= leaking


def test_enlarged_victim_set_reconciles_on_builtin_slice():
    """The widened three-way table over a classic + forward mix stays
    at 100% agreement on a representative scheme slice."""
    rows = reconcile_verdicts(
        victims=["gdnpeu", "girs", "fwd-eu", "fwd-rs"],
        schemes=["unsafe", "dom-nontso", "fence-spectre", "stt"],
    )
    assert len(rows) == 16
    for row in rows:
        assert row.agrees, f"{row.victim}/{row.scheme}: {row.detail}"
        assert row.static_flagged
