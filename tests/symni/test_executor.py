"""Executor semantics: windows, policies, pressure, and the calibration
matrix (symbolic side only — grounding lives in test_matrix_agreement)."""

import pytest

from repro.core.victims import victim_by_name
from repro.isa.builder import ProgramBuilder
from repro.isa.symbolic import SecretSpace
from repro.symni.executor import CheckBounds, SymniExecutor
from repro.symni.model import model_for
from repro.symni.observables import (
    KIND_CTRL_DIVERGE,
    KIND_MSHR_EXHAUST,
    KIND_PORT_BUSY,
    KIND_SPEC_ACCESS,
    KIND_SPEC_IFETCH,
    first_divergence,
)

SECRET_ADDR = 0x2000


def run_victim(name, scheme, **kwargs):
    spec = victim_by_name(name)
    executor = SymniExecutor.for_victim(spec, model_for(scheme), **kwargs)
    result = executor.run()
    return result, first_divergence(result.traces, result.assignments)


def kinds(result):
    return [{obs.kind for obs in trace} for trace in result.traces]


# ----------------------------------------------------------------------
# basic structure
# ----------------------------------------------------------------------
def test_secret_independent_program_is_clean():
    b = ProgramBuilder()
    b.imm("x", 7)
    b.alu("y", ("x",), lambda x: x + 1, name="inc")
    b.store_addr(SECRET_ADDR + 0x100, "y")
    b.halt()
    executor = SymniExecutor(
        b.build(), model_for("unsafe"), secret_addr=SECRET_ADDR
    )
    result = executor.run()
    assert first_divergence(result.traces, result.assignments) is None
    assert result.windows_explored == 0


def test_architectural_secret_branch_is_ctrl_diverge():
    b = ProgramBuilder()
    b.load_addr("s", SECRET_ADDR, name="sec")
    b.branch_if(("s",), lambda s: s != 0, "skip", name="br")
    b.imm("a", 1)
    b.label("skip")
    b.halt()
    executor = SymniExecutor(
        b.build(), model_for("unsafe"), secret_addr=SECRET_ADDR
    )
    result = executor.run()
    div = first_divergence(result.traces, result.assignments)
    assert div is not None
    assert div.kind == KIND_CTRL_DIVERGE


def test_window_bound_truncates_and_is_reported():
    result, div = run_victim(
        "gdnpeu", "unsafe", bounds=CheckBounds(max_window_instrs=1)
    )
    assert result.truncated
    assert any("truncated" in note for note in result.notes)


def test_window_budget_zero_explores_nothing():
    spec = victim_by_name("gdnpeu")
    executor = SymniExecutor.for_victim(
        spec, model_for("unsafe"), bounds=CheckBounds(max_windows=0)
    )
    result = executor.run()
    assert result.windows_explored == 0
    assert result.truncated


def test_wider_secret_space_is_supported():
    space = SecretSpace(variables=(("secret", (0, 1, 2, 3)),))
    spec = victim_by_name("gdnpeu")
    executor = SymniExecutor.for_victim(
        spec, model_for("unsafe"), space=space
    )
    result = executor.run()
    assert len(result.traces) == 4
    assert first_divergence(result.traces, result.assignments) is not None


# ----------------------------------------------------------------------
# per-policy observable rules
# ----------------------------------------------------------------------
def test_visible_scheme_emits_spec_access():
    result, div = run_victim("gdnpeu", "unsafe")
    assert div is not None
    assert div.kind == KIND_SPEC_ACCESS


def test_invisible_scheme_hides_accesses_but_not_ports():
    result, div = run_victim("gdnpeu", "invisispec-spectre")
    assert div is not None
    assert div.kind == KIND_PORT_BUSY
    for trace_kinds in kinds(result):
        assert KIND_SPEC_ACCESS not in trace_kinds


def test_delay_on_miss_strands_gadget_in_miss_lane():
    result, _ = run_victim("gdnpeu", "dom-nontso")
    lane0, lane1 = kinds(result)
    # gdnpeu primes secret=1's transmitter line: lane 1 hits and runs
    # the gadget; lane 0 misses, is delayed, and emits no port events.
    assert KIND_PORT_BUSY not in lane0
    assert KIND_PORT_BUSY in lane1


def test_value_prediction_equalizes_gdnpeu():
    result, div = run_victim("gdnpeu", "dom-nontso-vp")
    assert div is None


def test_fence_emits_nothing_speculative():
    result, div = run_victim("gdnpeu", "fence-spectre")
    assert div is None
    for trace_kinds in kinds(result):
        assert not trace_kinds & {
            KIND_SPEC_ACCESS,
            KIND_SPEC_IFETCH,
            KIND_PORT_BUSY,
            KIND_MSHR_EXHAUST,
        }


def test_mshr_exhaustion_under_invisible_scheme():
    result, div = run_victim("gdmshr", "invisispec-spectre")
    assert div is not None
    assert div.kind == KIND_MSHR_EXHAUST
    lane0, lane1 = kinds(result)
    assert KIND_MSHR_EXHAUST not in lane0  # coalesced: fanout 1
    assert KIND_MSHR_EXHAUST in lane1  # distinct lines: fanout >= capacity


def test_delay_on_miss_issues_no_mshr_demand():
    result, div = run_victim("gdmshr", "dom-nontso")
    assert div is None


def test_girs_ifetch_timing_under_invisispec():
    result, div = run_victim("girs", "invisispec-spectre")
    assert div is not None
    assert div.kind == KIND_SPEC_IFETCH


def test_icache_protection_silences_girs():
    result, div = run_victim("girs", "safespec-wfb")
    assert div is None


def test_stt_gates_tainted_transmitter():
    result, div = run_victim("gdnpeu", "stt")
    assert div is None


def test_stt_misses_architectural_secret():
    result, div = run_victim("gdnpeu-architectural", "stt")
    assert div is not None
    assert div.kind == KIND_PORT_BUSY


def test_priority_shields_every_builtin_victim():
    for name in ("gdnpeu", "gdmshr", "girs", "gdnpeu-arith"):
        result, div = run_victim(name, "priority")
        assert div is None, name


def test_dynamic_latency_defeats_value_prediction():
    result, div = run_victim("gdnpeu-arith", "dom-nontso-vp")
    assert div is not None
    assert div.kind == KIND_PORT_BUSY


def test_cleanupspec_rolls_back_fills_but_access_was_seen():
    spec = victim_by_name("gdnpeu")
    executor = SymniExecutor.for_victim(spec, model_for("cleanupspec"))
    result = executor.run()
    div = first_divergence(result.traces, result.assignments)
    assert div is not None
    assert div.kind == KIND_SPEC_ACCESS
