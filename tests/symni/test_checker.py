"""Checker verdicts and the counterexample minimizer."""

import pytest

from repro.core.victims import victim_by_name
from repro.symni.checker import (
    STATUS_CLEAN,
    STATUS_CONFIRMED,
    STATUS_UNVERIFIED,
    check_victim,
)
from repro.symni.counterexample import minimize_counterexample
from repro.symni.model import model_for
from repro.symni.report import NoninterferenceReport, verdict_dict


def test_clean_verdict_is_a_bounded_proof():
    verdict = check_victim("gdnpeu", "fence-spectre")
    assert verdict.status == STATUS_CLEAN
    assert verdict.clean and not verdict.leaks
    assert verdict.divergence is None
    assert verdict.replay is None
    assert "up to" in verdict.describe()


def test_no_replay_yields_unverified():
    verdict = check_victim("gdnpeu", "unsafe", replay=False)
    assert verdict.status == STATUS_UNVERIFIED
    assert verdict.leaks
    assert verdict.counterexample is not None
    assert verdict.replay is None


def test_confirmed_leak_carries_dynamic_signals():
    verdict = check_victim("gdnpeu", "dom-nontso")
    assert verdict.status == STATUS_CONFIRMED
    assert verdict.replay is not None
    assert verdict.replay.reproduced
    assert verdict.replay.signals
    assert verdict.counterexample is not None
    assert set(verdict.counterexample.secrets) == {0, 1}


def test_verdict_dict_is_json_shaped():
    import json

    verdict = check_victim("gdnpeu", "unsafe", replay=False)
    payload = verdict_dict(verdict)
    json.dumps(payload)  # must be serializable as-is
    assert payload["status"] == STATUS_UNVERIFIED
    assert payload["divergence"]["kind"]  # type: ignore[index]


def test_report_counts_and_render():
    verdicts = [
        check_victim("gdnpeu", "fence-spectre"),
        check_victim("gdnpeu", "unsafe", replay=False),
    ]
    report = NoninterferenceReport.from_verdicts(verdicts)
    counts = report.counts()
    assert counts[STATUS_CLEAN] == 1
    assert counts[STATUS_UNVERIFIED] == 1
    rendered = report.render()
    assert "fence-spectre" in rendered and "unsafe" in rendered


# ----------------------------------------------------------------------
# minimizer
# ----------------------------------------------------------------------
def test_minimizer_preserves_divergence_and_shrinks():
    verdict = check_victim("gdnpeu", "unsafe", replay=False, minimize=True)
    ce = verdict.counterexample
    assert ce is not None
    assert ce.minimized_listing is not None
    assert ce.nopped_slots  # something was provably irrelevant
    # Replaced slots are visible as NOPs in the minimized listing.
    assert "min@" in ce.minimized_listing


def test_minimizer_is_idempotent():
    spec = victim_by_name("gdnpeu")
    model = model_for("unsafe")
    verdict = check_victim("gdnpeu", "unsafe", replay=False, minimize=True)
    ce = verdict.counterexample
    assert ce is not None
    again = minimize_counterexample(ce, spec, model)
    assert again.nopped_slots == ce.nopped_slots


def test_unknown_victim_raises():
    with pytest.raises(ValueError):
        check_victim("no-such-victim", "unsafe")
