"""The ``python -m repro.symni`` exit-code contract, in process."""

import json

from repro.symni.__main__ import main


def test_clean_expectation_passes(capsys):
    code = main(["gdnpeu", "--scheme", "fence-spectre", "--expect", "clean"])
    assert code == 0
    out = capsys.readouterr().out
    assert "clean" in out


def test_expectation_violation_exits_1(capsys):
    code = main(
        ["gdnpeu", "--scheme", "unsafe", "--no-replay", "--expect", "clean"]
    )
    assert code == 1
    err = capsys.readouterr().err
    assert "expected 'clean'" in err


def test_fail_on_leak_gates(capsys):
    code = main(
        ["gdnpeu", "--scheme", "unsafe", "--no-replay", "--fail-on-leak"]
    )
    assert code == 1


def test_unknown_victim_is_usage_error(capsys):
    assert main(["definitely-not-a-victim"]) == 2


def test_unknown_scheme_is_usage_error(capsys):
    assert main(["gdnpeu", "--scheme", "definitely-not-a-scheme"]) == 2


def test_bad_flag_is_usage_error(capsys):
    assert main(["--no-such-flag"]) == 2


def test_nonpositive_bound_is_usage_error(capsys):
    assert main(["gdnpeu", "--scheme", "unsafe", "--bound", "0"]) == 2


def test_json_output_is_parseable(capsys):
    code = main(
        ["gdnpeu", "--scheme", "fence-spectre", "--json", "--no-replay"]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"]["clean"] == 1
    assert payload["verdicts"][0]["victim"] == "gdnpeu"
