"""Scheme models: the covering over the registry must be total and right."""

import pytest

from repro.schemes.registry import SCHEME_FACTORIES, make_scheme
from repro.symni.model import (
    LoadPolicy,
    all_models,
    model_for,
    model_from_scheme,
    resolve_model,
)


def test_every_registry_scheme_has_a_model():
    models = all_models()
    assert set(models) == set(SCHEME_FACTORIES)
    for name, model in models.items():
        assert model.name == name


EXPECTED_POLICIES = {
    "unsafe": LoadPolicy.VISIBLE,
    "cleanupspec": LoadPolicy.VISIBLE,
    "stt": LoadPolicy.VISIBLE,
    "stt-futuristic": LoadPolicy.VISIBLE,
    "invisispec-spectre": LoadPolicy.INVISIBLE,
    "invisispec-futuristic": LoadPolicy.INVISIBLE,
    "safespec-wfb": LoadPolicy.INVISIBLE,
    "safespec-wfc": LoadPolicy.INVISIBLE,
    "muontrap": LoadPolicy.INVISIBLE,
    "dom-nontso": LoadPolicy.DELAY_ON_MISS,
    "dom-tso": LoadPolicy.DELAY_ON_MISS,
    "condspec": LoadPolicy.DELAY_ON_MISS,
    "dom-nontso-vp": LoadPolicy.PREDICT_ON_MISS,
    "fence-spectre": LoadPolicy.NO_ISSUE,
    "fence-futuristic": LoadPolicy.NO_ISSUE,
    "priority": LoadPolicy.DELAY_ON_MISS,  # delegates to its DoM base
}


@pytest.mark.parametrize("name", sorted(SCHEME_FACTORIES))
def test_load_policy_matches_scheme_contract(name):
    assert model_for(name).policy is EXPECTED_POLICIES[name]


def test_priority_model_keeps_interference_shields():
    model = model_for("priority")
    assert model.hold_rs_until_safe
    assert model.preempt_eus


def test_stt_is_taint_gated_and_visible():
    model = model_for("stt")
    assert model.taint_gated
    assert model.policy is LoadPolicy.VISIBLE


def test_cleanupspec_undoes_fills():
    assert model_for("cleanupspec").undo_fills
    assert not model_for("unsafe").undo_fills


def test_mshr_allocation_follows_policy():
    assert model_for("invisispec-spectre").spec_miss_allocates_mshr
    assert model_for("unsafe").spec_miss_allocates_mshr
    assert not model_for("dom-nontso").spec_miss_allocates_mshr
    assert not model_for("fence-spectre").spec_miss_allocates_mshr


def test_unknown_scheme_class_raises():
    class Mystery:
        name = "mystery"

    with pytest.raises((ValueError, TypeError)):
        resolve_model(Mystery())  # type: ignore[arg-type]


def test_model_from_live_instance_matches_registry():
    scheme = make_scheme("dom-nontso")
    live = model_from_scheme(scheme)
    assert live.policy is LoadPolicy.DELAY_ON_MISS
    assert resolve_model(scheme).policy is live.policy
