"""The symbolic value layer: lanes, lifting, pointwise application."""

import pytest

from repro.isa.symbolic import SecretSpace, SymVal, lift, sym_apply


def test_bit_space_has_two_assignments():
    space = SecretSpace.bit()
    assert space.size == 2
    assert space.assignments() == ((("secret", 0),), (("secret", 1),))


def test_of_builds_product_space():
    space = SecretSpace.of(a=(0, 1), b=(0, 1, 2))
    assert space.size == 6
    names = [dict(a) for a in space.assignments()]
    assert {"a": 1, "b": 2} in names


def test_domain_must_distinguish():
    with pytest.raises(ValueError):
        SecretSpace(variables=(("s", (7,)),))


def test_lift_is_uniform_and_concrete():
    space = SecretSpace.bit()
    val = lift(space, 42)
    assert val.is_uniform
    assert val.concrete() == 42


def test_secret_is_not_uniform():
    space = SecretSpace.bit()
    sec = space.secret("secret")
    assert not sec.is_uniform
    with pytest.raises(ValueError):
        sec.concrete()
    assert sec.distinguishing_lanes() == (0, 1)


def test_sym_apply_is_pointwise():
    space = SecretSpace.bit()
    sec = space.secret("secret")
    shifted = sym_apply(space, lambda s: s * 64 + 3, sec)
    assert shifted.values == (3, 67)


def test_operators_mix_symvals_and_ints():
    space = SecretSpace.bit()
    sec = space.secret("secret")
    val = (sec * 2 + 1) ^ 1
    assert isinstance(val, SymVal)
    assert val.values == (0, 2)


def test_sym_eq_compares_per_lane():
    space = SecretSpace.bit()
    sec = space.secret("secret")
    eq = sec.sym_eq(1)
    assert eq.values == (0, 1)


def test_lane_projection():
    space = SecretSpace.bit()
    sec = space.secret("secret")
    assert [sec.lane(i) for i in range(space.size)] == [0, 1]
