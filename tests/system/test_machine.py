"""Tests for the multi-core machine driver."""

import pytest

from repro.isa import ProgramBuilder
from repro.pipeline.core import DeadlockError
from repro.system.machine import Machine

from tests.conftest import small_hierarchy_config


def counting_program(n, reg="acc"):
    b = ProgramBuilder()
    b.imm(reg, 0)
    for _ in range(n):
        b.addi(reg, reg, 1)
    return b.build()


class TestMachine:
    def test_single_core_runs_to_halt(self):
        m = Machine(2, hierarchy_config=small_hierarchy_config())
        core = m.attach(0, counting_program(10))
        m.run()
        assert core.halted
        assert core.regfile["acc"] == 10

    def test_two_cores_lockstep(self):
        m = Machine(2, hierarchy_config=small_hierarchy_config())
        c0 = m.attach(0, counting_program(10))
        c1 = m.attach(1, counting_program(30))
        m.run()
        assert c0.regfile["acc"] == 10
        assert c1.regfile["acc"] == 30
        assert c0.halted and c1.halted

    def test_attach_validation(self):
        m = Machine(2, hierarchy_config=small_hierarchy_config())
        m.attach(0, counting_program(1))
        with pytest.raises(ValueError):
            m.attach(0, counting_program(1))
        with pytest.raises(ValueError):
            m.attach(5, counting_program(1))

    def test_run_until_predicate(self):
        m = Machine(2, hierarchy_config=small_hierarchy_config())
        m.attach(0, counting_program(50))
        m.run(until=lambda: m.cycle >= 10)
        assert m.cycle == 10

    def test_run_deadlock_guard(self):
        m = Machine(1, hierarchy_config=small_hierarchy_config())
        with pytest.raises(DeadlockError):
            m.run(max_cycles=100, until=lambda: False)

    def test_scheduled_actions_fire_in_order(self):
        m = Machine(1, hierarchy_config=small_hierarchy_config())
        fired = []
        m.schedule(5, lambda: fired.append("b"))
        m.schedule(3, lambda: fired.append("a"))
        m.schedule(5, lambda: fired.append("c"))
        m.run_cycles(10)
        assert fired == ["a", "b", "c"]

    def test_cycle_hooks_run_every_cycle(self):
        m = Machine(1, hierarchy_config=small_hierarchy_config())
        ticks = []
        m.add_cycle_hook(ticks.append)
        m.run_cycles(7)
        assert ticks == list(range(1, 8))

    def test_warm_icache_prevents_fetch_stalls(self):
        m = Machine(1, hierarchy_config=small_hierarchy_config())
        program = counting_program(20)
        m.warm_icache(0, program)
        core = m.attach(0, program)
        m.run()
        assert core.stats.icache_miss_stalls == 0

    def test_warm_data_levels(self):
        m = Machine(1, hierarchy_config=small_hierarchy_config())
        m.warm_data(0, [0x8000], level="L1")
        assert m.hierarchy.l1_hit(0, 0x8000)
        m.warm_data(0, [0x9000], level="LLC")
        assert not m.hierarchy.l1_hit(0, 0x9000)
        assert m.hierarchy.llc.contains(0x9000)

    def test_warm_does_not_pollute_visible_log(self):
        m = Machine(1, hierarchy_config=small_hierarchy_config())
        m.warm_data(0, [0x8000])
        m.warm_icache(0, counting_program(3))
        assert m.hierarchy.visible_log == []

    def test_detach(self):
        m = Machine(2, hierarchy_config=small_hierarchy_config())
        m.attach(0, counting_program(5))
        m.detach(0)
        assert not m.cores
