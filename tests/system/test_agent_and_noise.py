"""Tests for the attacker agent and the noise injector."""

import pytest

from repro.memory.hierarchy import AccessKind
from repro.system.agent import AttackerAgent
from repro.system.machine import Machine
from repro.system.noise import NoiseInjector

from tests.conftest import small_hierarchy_config


@pytest.fixture
def machine():
    return Machine(3, hierarchy_config=small_hierarchy_config())


class TestAttackerAgent:
    def test_timed_read_classifies(self, machine):
        agent = AttackerAgent(machine, 2)
        cold = agent.timed_read(0x7000)
        assert not cold.hit
        agent.evict_own_copy(0x7000)
        warm = agent.timed_read(0x7000)
        assert warm.hit

    def test_flush_then_read_misses(self, machine):
        agent = AttackerAgent(machine, 2)
        agent.read(0x7000)
        agent.flush(0x7000)
        agent.evict_own_copy(0x7000)
        assert not agent.timed_read(0x7000).hit

    def test_evict_own_copy_keeps_llc(self, machine):
        agent = AttackerAgent(machine, 2)
        agent.read(0x7000)
        agent.evict_own_copy(0x7000)
        assert machine.hierarchy.llc.contains(0x7000)
        assert not machine.hierarchy.l1d[2].contains(0x7000)

    def test_busy_cycles_accumulate(self, machine):
        agent = AttackerAgent(machine, 2)
        agent.read(0x7000)
        assert agent.busy_cycles > 0
        before = agent.busy_cycles
        agent.flush(0x7000)
        assert agent.busy_cycles == before + agent.flush_cost

    def test_scheduled_read_happens_at_cycle(self, machine):
        agent = AttackerAgent(machine, 2)
        agent.schedule_read(0x9000, at_cycle=5)
        machine.run_cycles(4)
        assert all(e.line != 0x9000 for e in machine.hierarchy.visible_log)
        machine.run_cycles(2)
        entry = next(e for e in machine.hierarchy.visible_log if e.line == 0x9000)
        assert entry.cycle == 5
        assert entry.core == 2

    def test_scheduled_flush(self, machine):
        agent = AttackerAgent(machine, 2)
        agent.read(0x9000)
        agent.schedule_flush(0x9000, at_cycle=3)
        machine.run_cycles(5)
        assert machine.hierarchy.hit_level(2, 0x9000) == "DRAM"

    def test_core_id_validated(self, machine):
        with pytest.raises(ValueError):
            AttackerAgent(machine, 9)

    def test_prime_lines(self, machine):
        agent = AttackerAgent(machine, 2)
        lines = [0xA000, 0xB000]
        agent.prime_lines(lines, rounds=2)
        for line in lines:
            assert machine.hierarchy.llc.contains(line)


class TestNoiseInjector:
    def test_zero_rate_never_fires(self, machine):
        injector = NoiseInjector(machine, 1, [0x5000], rate=0.0)
        injector.attach()
        machine.run_cycles(100)
        assert injector.injected == 0

    def test_rate_one_fires_every_cycle(self, machine):
        injector = NoiseInjector(machine, 1, [0x5000], rate=1.0)
        injector.attach()
        machine.run_cycles(20)
        assert injector.injected == 20

    def test_deterministic_for_seed(self):
        counts = []
        for _ in range(2):
            m = Machine(2, hierarchy_config=small_hierarchy_config())
            injector = NoiseInjector(m, 1, [0x5000, 0x6000], rate=0.4, seed=9)
            injector.attach()
            m.run_cycles(200)
            counts.append(injector.injected)
        assert counts[0] == counts[1]

    def test_requires_pool_when_active(self):
        m = Machine(1, hierarchy_config=small_hierarchy_config())
        with pytest.raises(ValueError):
            NoiseInjector(m, 0, [], rate=0.5)

    def test_rate_validation(self):
        m = Machine(1, hierarchy_config=small_hierarchy_config())
        with pytest.raises(ValueError):
            NoiseInjector(m, 0, [0x100], rate=1.5)

    def test_attach_idempotent(self, machine):
        injector = NoiseInjector(machine, 1, [0x5000], rate=1.0)
        injector.attach()
        injector.attach()
        machine.run_cycles(10)
        assert injector.injected == 10
