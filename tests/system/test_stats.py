"""Tests for the machine/core statistics reports."""

import json

import pytest

from repro.isa import ProgramBuilder
from repro.system.machine import Machine
from repro.system.stats import core_report, machine_report

from tests.conftest import small_hierarchy_config


def run_machine():
    m = Machine(2, hierarchy_config=small_hierarchy_config())
    b = ProgramBuilder()
    b.imm("i", 0)
    b.label("head")
    b.load("x", ["i"], lambda v: 0x40_000 + (v % 4) * 64, name="ld")
    b.addi("i", "i", 1)
    b.branch_if(["i"], lambda v: v < 8, "head")
    program = b.build()
    m.warm_icache(0, program)
    core = m.attach(0, program, None)
    m.run()
    return m, core


class TestCoreReport:
    def test_counters_match_stats(self):
        m, core = run_machine()
        report = core_report(core)
        assert report.cycles == core.stats.cycles
        assert report.retired == core.stats.retired
        assert report.branches == core.stats.branches
        assert report.scheme == "unsafe"

    def test_mispredict_rate(self):
        m, core = run_machine()
        report = core_report(core)
        assert 0.0 <= report.mispredict_rate <= 1.0

    def test_as_dict_round_trips_json(self):
        m, core = run_machine()
        blob = json.dumps(core_report(core).as_dict())
        assert json.loads(blob)["core"] == 0


class TestMachineReport:
    def test_aggregates_all_levels(self):
        m, core = run_machine()
        report = machine_report(m)
        names = {c.name for c in report.caches}
        assert {"L1I.0", "L1D.0", "L2.0", "LLC"} <= names
        assert report.cycles == m.cycle
        assert report.dram_reads > 0

    def test_llc_hit_rate_sane(self):
        m, core = run_machine()
        report = machine_report(m)
        llc = next(c for c in report.caches if c.name == "LLC")
        assert 0.0 <= llc.hit_rate <= 1.0
        assert llc.accesses == llc.hits + llc.misses

    def test_render_mentions_cores_and_caches(self):
        m, core = run_machine()
        text = machine_report(m).render()
        assert "core 0" in text
        assert "LLC" in text
        assert "ipc" in text

    def test_json_serializable(self):
        m, core = run_machine()
        blob = json.dumps(machine_report(m).as_dict())
        parsed = json.loads(blob)
        assert parsed["cycles"] == m.cycle
        assert len(parsed["cores"]) == 1
