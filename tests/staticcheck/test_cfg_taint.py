"""Unit tests for the CFG and taint/constant dataflow passes."""

from repro.core.victims import ADDR_SECRET
from repro.isa import ProgramBuilder
from repro.staticcheck import (
    EDGE_FALLTHROUGH,
    EDGE_TAKEN,
    ControlFlowGraph,
    TaintAnalysis,
    TaintPolicy,
    speculative_windows,
)

POLICY = TaintPolicy(secret_addrs=(ADDR_SECRET,))

ADDR_PUBLIC = 0x9000


def branchy_program():
    b = ProgramBuilder()
    b.imm("i", 1)
    b.branch_if(["i"], lambda v: v > 0, "body", name="cond")
    b.jump("end")
    b.label("body")
    b.imm("x", 2)
    b.label("end")
    b.halt()
    return b.build()


class TestControlFlowGraph:
    def test_conditional_branch_has_two_successors(self):
        prog = branchy_program()
        cfg = ControlFlowGraph(prog)
        kinds = {e.kind: e.dst for e in cfg.successors(1)}
        assert kinds[EDGE_FALLTHROUGH] == 2
        assert kinds[EDGE_TAKEN] == prog.slot_of_label("body")

    def test_unconditional_jump_has_single_successor(self):
        prog = branchy_program()
        cfg = ControlFlowGraph(prog)
        edges = cfg.successors(2)  # the jump
        assert len(edges) == 1
        assert edges[0].kind == EDGE_TAKEN

    def test_halt_has_no_successors(self):
        prog = branchy_program()
        cfg = ControlFlowGraph(prog)
        assert cfg.successors(len(prog) - 1) == ()

    def test_windows_cover_both_directions(self):
        cfg = ControlFlowGraph(branchy_program())
        windows = speculative_windows(cfg, rob_size=64)
        directions = {(w.branch_slot, w.direction) for w in windows}
        assert (1, EDGE_TAKEN) in directions
        assert (1, EDGE_FALLTHROUGH) in directions

    def test_window_truncated_by_rob_size(self):
        b = ProgramBuilder()
        b.imm("i", 1)
        b.branch_if(["i"], lambda v: v > 0, "body", name="cond")
        b.label("body")
        for k in range(16):
            b.imm(f"r{k}", k)
        b.halt()
        cfg = ControlFlowGraph(b.build())
        small = {
            w.direction: w for w in speculative_windows(cfg, rob_size=4)
        }
        assert small[EDGE_TAKEN].truncated
        assert len(small[EDGE_TAKEN].slots) == 4
        big = {
            w.direction: w for w in speculative_windows(cfg, rob_size=256)
        }
        assert not big[EDGE_TAKEN].truncated


class TestTaintAnalysis:
    def run_facts(self, program, registers=None):
        return TaintAnalysis(program, POLICY, registers=registers).run()

    def test_secret_load_taints_destination(self):
        b = ProgramBuilder()
        b.load_addr("sec", ADDR_SECRET, name="secret load")
        b.halt()
        facts = self.run_facts(b.build())
        assert facts[0].secret_load
        assert facts[0].result.taint

    def test_secrecy_is_line_granular(self):
        b = ProgramBuilder()
        b.load_addr("sec", ADDR_SECRET + 8, name="same line")
        b.load_addr("pub", ADDR_SECRET + 4096, name="far away")
        b.halt()
        facts = self.run_facts(b.build())
        assert facts[0].secret_load
        assert not facts[1].secret_load
        assert not facts[1].result.taint

    def test_taint_propagates_through_alu(self):
        b = ProgramBuilder()
        b.load_addr("sec", ADDR_SECRET)
        b.addi("derived", "sec", 3)
        b.addi("clean", "derived", 0)
        b.halt()
        facts = self.run_facts(b.build())
        assert facts[1].operand_taint
        assert facts[1].result.taint
        assert facts[2].operand_taint

    def test_tainted_address_marks_transmitter(self):
        b = ProgramBuilder()
        b.load_addr("sec", ADDR_SECRET)
        b.load("leak", ["sec"], lambda s: ADDR_PUBLIC + s * 64, name="xmit")
        b.halt()
        facts = self.run_facts(b.build())
        assert facts[1].address_taint
        assert facts[1].result.taint

    def test_constants_fold_through_alu(self):
        b = ProgramBuilder()
        b.imm("a", 5)
        b.addi("b", "a", 2)
        b.load("x", ["b"], lambda v: v * 64, name="const addr")
        b.halt()
        facts = self.run_facts(b.build())
        assert facts[1].result.const == 7
        assert facts[2].address == 7 * 64
        assert not facts[2].result.taint

    def test_initial_registers_seed_constants(self):
        b = ProgramBuilder()
        b.load("x", ["base"], lambda v: v, name="reg addr")
        b.halt()
        facts = self.run_facts(b.build(), registers={"base": ADDR_SECRET})
        assert facts[0].secret_load

    def test_unreachable_slots_stay_unreachable(self):
        b = ProgramBuilder()
        b.jump("end")
        b.load_addr("sec", ADDR_SECRET, name="dead code")
        b.label("end")
        b.halt()
        facts = self.run_facts(b.build())
        assert not facts[1].reachable

    def test_join_drops_disagreeing_constants(self):
        b = ProgramBuilder()
        b.imm("i", 0)
        b.branch_if(["i"], lambda v: v == 0, "other", name="cond")
        b.imm("x", 1)
        b.jump("merge")
        b.label("other")
        b.imm("x", 2)
        b.label("merge")
        b.addi("y", "x", 0)
        b.halt()
        facts = self.run_facts(b.build())
        merge = b.build().slot_of_label("merge")
        assert facts[merge].result.const is None
        assert not facts[merge].result.taint
