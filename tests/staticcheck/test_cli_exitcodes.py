"""Exit-code contract of ``python -m repro.staticcheck``:
0 ok / 1 gate / 2 usage / 3 analysis error, SIGPIPE quiet."""

import repro.staticcheck.__main__ as cli


def test_clean_run_exits_0(capsys):
    assert cli.main(["gdnpeu"]) == 0
    assert "gdnpeu" in capsys.readouterr().out


def test_findings_gate_exits_1(capsys):
    assert cli.main(["gdnpeu", "--fail-on-findings"]) == 1
    assert "finding(s) reported" in capsys.readouterr().err


def test_unknown_target_is_usage_error(capsys):
    assert cli.main(["definitely-not-a-victim"]) == 2


def test_bad_flag_is_usage_error(capsys):
    assert cli.main(["--no-such-flag"]) == 2


def test_analysis_crash_exits_3(tmp_path, capsys):
    bad = tmp_path / "explodes.py"
    bad.write_text("raise RuntimeError('boom at import time')\n")
    assert cli.main([str(bad)]) == 3
    assert "analysis failed" in capsys.readouterr().err


def test_missing_required_family_exits_1(capsys):
    # gdnpeu carries no G-IRS gadget; requiring one must gate.
    assert cli.main(["gdnpeu", "--require-family", "girs"]) == 1


def test_broken_pipe_exits_0_quietly(monkeypatch):
    """`... | head` closing stdout is a success, not a traceback."""

    def raise_pipe(argv=None):
        raise BrokenPipeError()

    dups = []
    monkeypatch.setattr(cli, "run", raise_pipe)
    monkeypatch.setattr(cli.os, "open", lambda *a, **k: 99)
    monkeypatch.setattr(cli.os, "dup2", lambda *a: dups.append(a))
    assert cli.main([]) == 0
    # stdout was redirected to devnull so interpreter shutdown cannot
    # re-raise while flushing.
    assert dups
