"""Gadget detectors + CLI: every victim kit flags, clean code stays clean."""

import json

import pytest

from repro.core.victims import (
    ADDR_A,
    ADDR_B,
    ADDR_SECRET,
    VICTIM_FACTORIES,
    victim_by_name,
)
from repro.isa import ProgramBuilder
from repro.staticcheck import (
    FAMILY_FORWARD,
    FAMILY_GDMSHR,
    FAMILY_GDNPEU,
    FAMILY_GIRS,
    analyze_program,
    analyze_victim,
    prefilter_specs,
)
from repro.staticcheck.__main__ import main
from repro.runner.spec import TrialSpec

#: Victim registry name -> the family its detector must report.
EXPECTED_FAMILY = {
    "gdnpeu": FAMILY_GDNPEU,
    "gdnpeu-arith": FAMILY_GDNPEU,
    "gdnpeu-architectural": FAMILY_GDNPEU,
    "gdnpeu-store": FAMILY_GDNPEU,
    "gdnpeu-occupancy": FAMILY_GDNPEU,
    "gdmshr": FAMILY_GDMSHR,
    "girs": FAMILY_GIRS,
    "fwd-eu": FAMILY_FORWARD,
    "fwd-mshr": FAMILY_FORWARD,
    "fwd-rs": FAMILY_FORWARD,
}

#: The forward victims deliberately reuse a primary resource channel
#: (that is what makes them *forward* variants of it), so exactly one
#: primary family may co-occur with their forward finding.
ALLOWED_CO_PRIMARY = {
    "fwd-eu": {FAMILY_GDNPEU},
    "fwd-mshr": {FAMILY_GDMSHR},
    "fwd-rs": {FAMILY_GIRS},
}


def control_program():
    """Victim-shaped program that never touches the secret."""
    b = ProgramBuilder()
    b.imm("i", 1)
    b.imm("n", 10)
    b.branch_if(["i", "n"], lambda i, n: i < n, "body", name="branch")
    b.jump("end")
    b.label("body")
    b.load_addr("pub", ADDR_A, name="public load")
    for k in range(8):
        b.alu(f"p{k}", ["pub"], lambda v: v + 1, latency=15, port=0)
    b.load_addr("pub2", ADDR_B)
    b.label("end")
    b.halt()
    return b.build()


class TestDetectors:
    def test_registry_covers_every_victim(self):
        assert set(EXPECTED_FAMILY) == set(VICTIM_FACTORIES)

    @pytest.mark.parametrize("name", sorted(VICTIM_FACTORIES))
    def test_every_victim_kit_is_flagged(self, name):
        report = analyze_victim(victim_by_name(name))
        assert EXPECTED_FAMILY[name] in report.families(), report.render()

    @pytest.mark.parametrize("name", sorted(VICTIM_FACTORIES))
    def test_no_foreign_primary_family(self, name):
        """A victim must not trip the *other* primary detectors (forward
        interference may legitimately co-occur with any of them)."""
        report = analyze_victim(victim_by_name(name))
        primaries = {FAMILY_GDNPEU, FAMILY_GDMSHR, FAMILY_GIRS}
        allowed = {EXPECTED_FAMILY[name]} | ALLOWED_CO_PRIMARY.get(name, set())
        foreign = (set(report.families()) & primaries) - allowed
        assert not foreign, report.render()

    def test_gadget_free_control_is_clean(self):
        report = analyze_program(
            control_program(), secret_addrs=(ADDR_SECRET,), name="control"
        )
        assert report.clean, report.render()

    def test_report_roundtrips_to_json(self):
        report = analyze_victim(victim_by_name("gdmshr"))
        blob = json.loads(report.to_json())
        assert blob["name"] == "gdmshr-vd-vd"
        assert any(f["family"] == FAMILY_GDMSHR for f in blob["findings"])

    def test_severity_orders_findings(self):
        report = analyze_victim(victim_by_name("gdnpeu"))
        ranks = [f.severity.rank for f in report.sorted_findings()]
        assert ranks == sorted(ranks, reverse=True)


class TestPrefilter:
    def test_gadget_victims_are_flagged_not_skipped(self):
        specs = [
            TrialSpec(victim=v, scheme="unsafe", secret=s)
            for v in ("gdnpeu", "gdmshr")
            for s in (0, 1)
        ]
        result = prefilter_specs(specs)
        assert result.flagged == specs
        assert result.skipped_trials == 0
        assert set(result.reports) == {"gdnpeu-vd-vd", "gdmshr-vd-vd"}

    def test_analysis_runs_once_per_victim_identity(self):
        specs = [
            TrialSpec(victim="girs", scheme=sch, secret=s)
            for sch in ("unsafe", "dom-nontso")
            for s in (0, 1)
        ]
        result = prefilter_specs(specs)
        assert len(result.reports) == 1


class TestCLI:
    def test_default_run_reports_all_victims(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        for name in VICTIM_FACTORIES:
            victim = victim_by_name(name)
            assert victim.name in out

    def test_json_output_parses(self, capsys):
        assert main(["gdmshr", "--json"]) == 0
        blob = json.loads(capsys.readouterr().out)
        assert len(blob) == 1
        assert blob[0]["findings"]

    def test_require_family_satisfied(self):
        assert main(["gdnpeu", "--require-family", "gdnpeu"]) == 0

    def test_require_family_missing_fails(self, capsys):
        assert main(["gdnpeu", "--require-family", "girs"]) == 1
        assert "girs" in capsys.readouterr().err

    def test_fail_on_findings(self):
        assert main(["gdnpeu", "--fail-on-findings"]) == 1

    def test_unknown_target_exits_2(self):
        assert main(["no-such-victim"]) == 2

    def test_file_target_with_program(self, tmp_path, capsys):
        target = tmp_path / "demo.py"
        target.write_text(
            "from repro.core.victims import ADDR_SECRET\n"
            "from repro.isa import ProgramBuilder\n"
            "b = ProgramBuilder()\n"
            "b.imm('i', 1)\n"
            "b.branch_if(['i'], lambda v: v > 0, 'body', name='cond')\n"
            "b.label('body')\n"
            "b.load_addr('sec', ADDR_SECRET)\n"
            "for k in range(8):\n"
            "    b.alu(f'd{k}', ['sec'], lambda v: v + 1, latency=15, port=0)\n"
            "b.halt()\n"
            "PROGRAM = b.build()\n"
            "SECRET_ADDRS = (ADDR_SECRET,)\n"
        )
        assert main([str(target)]) == 0
        assert "gdnpeu" in capsys.readouterr().out

    def test_file_target_without_contract_exits_2(self, tmp_path):
        target = tmp_path / "empty.py"
        target.write_text("x = 1\n")
        assert main([str(target)]) == 2
