"""Property tests for the sweep pre-filter (hypothesis).

The filter's one-sided contract, stated as properties over arbitrary
spec lists built from the victim/scheme registries:

* it *partitions* — every spec lands in exactly one of flagged/clean;
* it never drops a spec whose victim demonstrably leaks (the built-in
  gadget victims all have confirmed dynamic leaks — see
  tests/staticcheck/test_crossval.py — so none of their specs may be
  answered "clean" without simulation);
* it is idempotent — re-filtering either partition changes nothing.
"""

from hypothesis import given, settings, strategies as st

from repro.core.victims import VICTIM_FACTORIES
from repro.runner.spec import TrialSpec, trial_seed
from repro.schemes.registry import SCHEME_FACTORIES
from repro.staticcheck.prefilter import prefilter_specs

#: Victims whose dynamic leak is confirmed by the cross-validation
#: suite; the pre-filter must always forward their specs to simulation.
LEAKY_VICTIMS = sorted(VICTIM_FACTORIES)


def _spec(victim: str, scheme: str, secret: int) -> TrialSpec:
    return TrialSpec(
        victim=victim,
        scheme=scheme,
        secret=secret,
        seed=trial_seed(victim, scheme, secret),
    )


specs_strategy = st.lists(
    st.builds(
        _spec,
        st.sampled_from(sorted(VICTIM_FACTORIES)),
        st.sampled_from(sorted(SCHEME_FACTORIES)),
        st.integers(min_value=0, max_value=1),
    ),
    max_size=12,
)


@settings(max_examples=25, deadline=None)
@given(specs=specs_strategy)
def test_prefilter_partitions(specs):
    result = prefilter_specs(specs)
    assert len(result.flagged) + len(result.clean) == len(specs)
    assert sorted(
        s.digest() for s in result.flagged + result.clean
    ) == sorted(s.digest() for s in specs)


@settings(max_examples=25, deadline=None)
@given(specs=specs_strategy)
def test_prefilter_never_drops_leaky_victims(specs):
    result = prefilter_specs(specs)
    clean_victims = {s.victim for s in result.clean}
    assert not clean_victims & set(LEAKY_VICTIMS), (
        "pre-filter skipped simulation for a victim with a confirmed "
        f"dynamic leak: {sorted(clean_victims & set(LEAKY_VICTIMS))}"
    )


@settings(max_examples=15, deadline=None)
@given(specs=specs_strategy)
def test_prefilter_is_idempotent(specs):
    once = prefilter_specs(specs)
    again_flagged = prefilter_specs(once.flagged)
    again_clean = prefilter_specs(once.clean)
    assert [s.digest() for s in again_flagged.flagged] == [
        s.digest() for s in once.flagged
    ]
    assert not again_flagged.clean
    assert [s.digest() for s in again_clean.clean] == [
        s.digest() for s in once.clean
    ]
    assert not again_clean.flagged
