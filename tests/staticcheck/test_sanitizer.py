"""Invariant sanitizer: clean runs stay silent, seeded breakage raises."""

from types import SimpleNamespace

import pytest

from repro.core.harness import run_victim_trial
from repro.core.victims import victim_by_name
from repro.pipeline.scheme_api import LoadDecision
from repro.runner.runner import run_trial_spec
from repro.runner.spec import TrialSpec
from repro.staticcheck import (
    InvariantSanitizer,
    InvariantViolation,
    compose_hooks,
)

SCHEMES = ["unsafe", "dom-nontso", "dom-tso", "invisispec-spectre"]


class TestSanitizedRuns:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("victim", ["gdnpeu", "gdmshr", "girs"])
    def test_no_violations_across_schemes(self, victim, scheme):
        result = run_victim_trial(
            victim_by_name(victim), scheme, 1, sanitize=True, max_cycles=60_000
        )
        sanitizer = result.sanitizer
        assert sanitizer is not None
        assert sanitizer.cycles_checked > 0
        assert sanitizer.invariant_checks > 0

    def test_previews_are_exercised(self):
        result = run_victim_trial(
            victim_by_name("gdnpeu"), "dom-nontso", 1, sanitize=True
        )
        assert result.sanitizer.preview_checks > 0

    def test_unsanitized_run_has_no_sanitizer(self):
        result = run_victim_trial(victim_by_name("gdnpeu"), "unsafe", 1)
        assert result.sanitizer is None

    def test_trial_spec_sanitize_passes_through_runner(self):
        spec = TrialSpec(
            victim="gdnpeu", scheme="unsafe", secret=1, sanitize=True
        )
        summary = run_trial_spec(spec)
        assert summary.cycles > 0


class TestSeededViolations:
    def run_and_keep_handles(self):
        return run_victim_trial(
            victim_by_name("gdnpeu"), "unsafe", 1, sanitize=True
        )

    def test_lsu_slot_leak_raises(self):
        result = self.run_and_keep_handles()
        core = result.core
        core.lsu._occupancy += 1
        with pytest.raises(InvariantViolation, match="LSU slot accounting"):
            result.sanitizer.check_core(core)

    def test_rs_accounting_breakage_raises(self):
        result = self.run_and_keep_handles()
        core = result.core
        core.rs._occupied += 1
        with pytest.raises(InvariantViolation, match="RS slot accounting"):
            result.sanitizer.check_core(core)

    def test_stale_fence_raises(self):
        result = self.run_and_keep_handles()
        core = result.core
        core._fences.add(10_000)
        with pytest.raises(InvariantViolation, match="fence"):
            result.sanitizer.check_core(core)

    def test_violation_carries_cycle_and_context(self):
        result = self.run_and_keep_handles()
        core = result.core
        core.lsu._occupancy += 1
        with pytest.raises(InvariantViolation) as exc:
            result.sanitizer.check_core(core)
        assert exc.value.cycle == core.cycle
        assert "victim=gdnpeu" in str(exc.value)


class _FakeScheme:
    """Minimal scheme double for the peek-agreement wrapper."""

    name = "fake"

    def __init__(self):
        self.peek_load = LoadDecision.VISIBLE
        self.real_load = LoadDecision.VISIBLE
        self.peek_issue = True
        self.real_issue = True

    def load_decision(self, core, load, safe):
        return self.real_load

    def peek_load_decision(self, core, load, safe):
        return self.peek_load

    def may_issue(self, core, instr, flags):
        return self.real_issue

    def peek_may_issue(self, core, instr, flags):
        return self.peek_issue


def _stub_core():
    return SimpleNamespace(cycle=7, trial_context="test")


def _stub_instr():
    return SimpleNamespace(seq=42)


class TestPreviewAgreement:
    def wrapped(self):
        scheme = _FakeScheme()
        sanitizer = InvariantSanitizer()
        sanitizer._wrap_scheme(scheme)
        return scheme, sanitizer

    def test_agreeing_preview_passes(self):
        scheme, sanitizer = self.wrapped()
        decision = scheme.load_decision(_stub_core(), _stub_instr(), False)
        assert decision is LoadDecision.VISIBLE
        assert sanitizer.preview_checks == 1

    def test_disagreeing_load_preview_raises(self):
        scheme, _ = self.wrapped()
        scheme.peek_load = LoadDecision.DELAY
        with pytest.raises(InvariantViolation, match="peek_load_decision"):
            scheme.load_decision(_stub_core(), _stub_instr(), False)

    def test_disagreeing_issue_preview_raises(self):
        scheme, _ = self.wrapped()
        scheme.peek_issue = False
        with pytest.raises(InvariantViolation, match="peek_may_issue"):
            scheme.may_issue(_stub_core(), _stub_instr(), None)

    def test_abstaining_preview_is_not_checked(self):
        scheme, sanitizer = self.wrapped()
        scheme.peek_load = None
        scheme.real_load = LoadDecision.DELAY
        decision = scheme.load_decision(_stub_core(), _stub_instr(), False)
        assert decision is LoadDecision.DELAY
        assert sanitizer.preview_checks == 0

    def test_detach_restores_scheme(self):
        scheme, sanitizer = self.wrapped()
        sanitizer.detach()
        scheme.peek_load = LoadDecision.DELAY
        # Wrapper gone: the disagreement goes unnoticed.
        assert (
            scheme.load_decision(_stub_core(), _stub_instr(), False)
            is LoadDecision.VISIBLE
        )


class TestComposeHooks:
    def test_empty_is_none(self):
        assert compose_hooks() is None
        assert compose_hooks(None, None) is None

    def test_single_hook_unwrapped(self):
        sanitizer = InvariantSanitizer()
        assert compose_hooks(None, sanitizer) is sanitizer

    def test_fan_out(self):
        calls = []
        a = SimpleNamespace(on_cycle=lambda m: calls.append("a"))
        b = SimpleNamespace(on_cycle=lambda m: calls.append("b"))
        composite = compose_hooks(a, b)
        composite.on_cycle(None)
        assert calls == ["a", "b"]
        # Hooks without on_core_cycle are skipped, not crashed on.
        composite.on_core_cycle(None)
