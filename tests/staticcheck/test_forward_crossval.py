"""Cross-validation of the forward-interference detector specifically.

The other detectors have family-matched confirmation rules (data-side
for GD-NPEU/GD-MSHR, instruction-side for G-IRS); forward interference
accepts *any* dynamic witness.  These tests pin that contract and the
detector's evidence shape end to end against the simulator.
"""

import pytest

from repro.core.victims import victim_by_name
from repro.staticcheck import (
    FAMILY_FORWARD,
    analyze_victim,
    cross_validate,
    dynamic_signals,
)
from repro.staticcheck.crossval import _finding_confirmed


def _forward_findings(name):
    report = analyze_victim(victim_by_name(name))
    return [f for f in report.findings if f.family == FAMILY_FORWARD], report


@pytest.mark.parametrize("name", ["gdnpeu", "gdmshr", "girs"])
def test_builtins_carry_forward_findings(name):
    findings, _ = _forward_findings(name)
    assert findings, f"{name}: no forward-interference finding"
    for finding in findings:
        # The detector's evidence names the contended ports and the
        # (older, younger) pairs the claim is about.
        evidence = finding.evidence_dict()
        assert evidence.get("ports")
        assert evidence.get("pairs")
        assert evidence.get("pair_count", 0) >= len(evidence["pairs"])


@pytest.mark.parametrize("name", ["gdnpeu", "girs"])
def test_forward_findings_confirm_dynamically(name):
    victim = victim_by_name(name)
    findings, report = _forward_findings(name)
    assert findings
    verdict = cross_validate(victim, report)
    for finding in verdict.findings:
        if finding.family == FAMILY_FORWARD:
            assert finding.confirmed, finding.message


def test_forward_accepts_any_signal_side():
    """Forward interference is confirmed by data- or inst-side signals;
    G-IRS only by inst-side.  girs produces inst-side-only signals, so
    it separates the two rules."""
    victim = victim_by_name("girs")
    signals = dynamic_signals(victim)
    assert signals and all(s.side == "inst" for s in signals)
    findings, _ = _forward_findings("girs")
    assert _finding_confirmed(findings[0], signals, victim)


def test_forward_unconfirmed_without_signals():
    findings, _ = _forward_findings("gdnpeu")
    assert not _finding_confirmed(findings[0], [], victim_by_name("gdnpeu"))
