"""Cross-validation: static findings must coincide with dynamic signals."""

import pytest

from repro.core.victims import victim_by_name
from repro.staticcheck import analyze_victim, cross_validate, dynamic_signals


@pytest.mark.parametrize("name", ["gdnpeu", "gdmshr", "girs"])
def test_findings_confirmed_dynamically(name):
    victim = victim_by_name(name)
    report = analyze_victim(victim)
    assert report.findings
    verdict = cross_validate(victim, report)
    assert verdict.all_confirmed, [
        (f.family, f.confirmed) for f in verdict.findings
    ]
    # cross_validate stamps the report's findings in place too.
    assert all(f.confirmed for f in report.findings)


def test_girs_confirmation_uses_instruction_side():
    victim = victim_by_name("girs")
    signals = dynamic_signals(victim)
    assert any(s.side == "inst" for s in signals)


def test_gdnpeu_order_flip_signal():
    victim = victim_by_name("gdnpeu")
    signals = dynamic_signals(victim)
    assert any(s.kind == "order-flip" for s in signals)


def test_confirmation_marks_render():
    victim = victim_by_name("gdmshr")
    report = analyze_victim(victim)
    cross_validate(victim, report)
    assert "[confirmed]" in report.render()
