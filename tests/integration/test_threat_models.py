"""Threat-model variations (§2.1) and software mitigations.

* SameThread model: the receiver's accesses come from the victim's own
  core (sandbox setting) — the channel still decodes.
* Software mitigation: an explicit serializing fence after the branch
  (lfence-style) closes the window even on the unsafe machine.
"""

import pytest

from repro.core.harness import prepare_machine
from repro.core.receivers import QLRUReceiver
from repro.core.victims import ADDR_SECRET, ADDR_S, ADDR_A, ADDR_B, gdnpeu_victim
from repro.isa.instructions import OpClass
from repro.isa import instructions as ins
from repro.isa.program import Program
from repro.system.agent import AttackerAgent


class TestSameThreadModel:
    def run_bit(self, secret):
        spec = gdnpeu_victim()
        machine, core, _ = prepare_machine(spec, "dom-nontso", secret)
        # Receiver primitives issued from the *victim's* core (core 0):
        # the sandboxed-attacker setting.
        agent = AttackerAgent(machine, 0)
        receiver = QLRUReceiver(agent, spec.line_a, spec.line_b)
        receiver.prime()
        # the prime polluted the victim's private caches with A; restore
        # the spec's required state (A out of the victim's L1/L2)
        agent.evict_own_copy(spec.line_a)
        machine.run(until=lambda: core.halted, max_cycles=30_000)
        return receiver.probe_and_decode()

    def test_same_thread_receiver_decodes(self):
        assert self.run_bit(0) == 0
        assert self.run_bit(1) == 1


def with_fence_after_branch(program: Program) -> Program:
    """Insert an explicit FENCE at the head of the branch's protected
    body — where compilers emit lfence for Spectre v1 (the fence must
    sit on the *speculatively executed* path to be effective)."""
    insert_at = program.labels["body"]
    instructions = list(program.instructions)
    instructions.insert(insert_at, ins.fence(name="lfence"))
    labels = {
        name: slot + 1 if slot > insert_at else slot
        for name, slot in program.labels.items()
    }
    # the body label itself must now point at the fence
    labels["body"] = insert_at
    return Program(
        instructions=instructions,
        labels=labels,
        code_base=program.code_base,
        inst_size=program.inst_size,
    )


class TestSoftwareFence:
    def run_orders(self, mutate=None):
        spec = gdnpeu_victim()
        if mutate:
            spec.program = mutate(spec.program)
            spec.branch_slot = next(
                s
                for s, inst in enumerate(spec.program)
                if inst.name == "victim branch"
            )
        orders = []
        for secret in (0, 1):
            from repro.core.harness import run_victim_trial

            result = run_victim_trial(spec, "unsafe", secret)
            orders.append(result.order(spec.line_a, spec.line_b))
        return orders

    def test_unmitigated_unsafe_leaks(self):
        orders = self.run_orders()
        assert orders[0] != orders[1]

    def test_lfence_after_branch_blocks(self):
        """The fence keeps the gadget from issuing until the branch
        retires — no interference, no reorder, even on 'unsafe'."""
        orders = self.run_orders(mutate=with_fence_after_branch)
        assert orders[0] == orders[1]


class TestFenceSemantics:
    def test_fence_placement_helper(self):
        spec = gdnpeu_victim()
        fenced = with_fence_after_branch(spec.program)
        body = fenced.slot_of_label("body")
        assert fenced.at(body).opclass is OpClass.FENCE
        # all other labels still resolve to their original instructions
        for label in spec.program.labels:
            if label == "body":
                continue  # deliberately repointed at the fence
            old_inst = spec.program.at(spec.program.slot_of_label(label))
            new_inst = fenced.at(fenced.slot_of_label(label))
            assert old_inst.name == new_inst.name
