"""Integration tests: the paper's narratives, end to end.

Each test is a complete story across all subsystems — pipeline, caches,
schemes, attacker agent, receivers — rather than a unit behaviour.
"""

import pytest

from repro.core.attack import DCacheAttack, ICacheAttack
from repro.core.harness import run_victim_trial
from repro.core.noninterference import check_ideal_invisible_speculation
from repro.core.spectre import spectre_leak_trial
from repro.core.victims import ADDR_REF, gdnpeu_victim, girs_victim


class TestThePaperInOneTest:
    def test_intro_story(self):
        """§1: Spectre works; invisible speculation stops it; the
        interference attack restores the leak."""
        # Spectre leaks on the unprotected machine.
        assert spectre_leak_trial("unsafe", 9).leaked
        # DoM blocks it.
        assert not spectre_leak_trial("dom-nontso", 9).leaked
        # The D-cache interference PoC leaks through DoM anyway.
        attack = DCacheAttack("dom-nontso")
        for bit in (1, 0, 1):
            assert attack.send_bit(bit).correct

    def test_transmitter_never_touches_visible_cache_state(self):
        """The crux: the secret crosses without ANY mis-speculated load
        changing visible cache state.  The transmitter and gadget lines
        never appear in the victim's visible-LLC log under DoM."""
        spec = gdnpeu_victim()
        gadget_lines = {addr & ~63 for addr in spec.prime_l1} | {
            addr & ~63 for addr in spec.flush_lines
        } - {spec.line_a, spec.line_b}
        for secret in (0, 1):
            result = run_victim_trial(spec, "dom-nontso", secret)
            victim_lines = {e.line for e in result.visible if e.core == 0}
            # The chase lines are architectural (older than the branch);
            # the transmitter/secret lines must be absent.
            secret_line = spec.secret_addr & ~63
            s_lines = {(spec.secret_addr & ~63), 0x100800}
            assert secret_line not in victim_lines
        # and yet the bit crosses:
        attack = DCacheAttack("dom-nontso")
        assert attack.send_bit(1).correct and attack.send_bit(0).correct

    def test_cross_core_only_observation(self):
        """The receiver never reads victim-core state: remove every
        direct observation and the attack still works (CrossCore model)."""
        attack = ICacheAttack("invisispec-spectre")
        trial = attack.send_bit(0)
        assert trial.correct

    def test_defense_closes_both_pocs(self):
        for attack_cls in (DCacheAttack, ICacheAttack):
            attack = attack_cls("fence-futuristic")
            received = {attack.send_bit(0).received, attack.send_bit(1).received}
            assert len(received) == 1  # no secret dependence

    def test_property_and_attack_agree(self):
        """The §5.1 property and the end-to-end attack give the same
        verdict on DoM: violated <=> exploitable."""
        spec = gdnpeu_victim()
        report = check_ideal_invisible_speculation(spec, "dom-nontso", 1)
        attack_works = all(
            DCacheAttack("dom-nontso").send_bit(b).correct for b in (0, 1)
        )
        assert (not report.holds) and attack_works

    def test_reference_clock_attack(self):
        """§3.3: an attacker access at a fixed time acts as a clock for
        schemes where two unprotected victim loads cannot coexist
        (MuonTrap here)."""
        spec = gdnpeu_victim()
        t0 = run_victim_trial(spec, "muontrap", 0).first_access(spec.line_a)
        t1 = run_victim_trial(spec, "muontrap", 1).first_access(spec.line_a)
        assert t0 is not None and t1 is not None and t1 > t0
        ref_cycle = (t0 + t1) // 2
        orders = []
        for secret in (0, 1):
            result = run_victim_trial(
                spec, "muontrap", secret,
                reference_accesses=[(ADDR_REF, ref_cycle)],
            )
            orders.append(result.order(spec.line_a, ADDR_REF))
        assert orders[0] != orders[1]

    def test_girs_presence_channel_matches_frontend_stats(self):
        """GIRS's signal and its microarchitectural cause line up: the
        missing-transmitter run shows RS-full dispatch stalls and no
        target fetch; the hitting run shows the opposite."""
        spec = girs_victim()
        miss = run_victim_trial(spec, "dom-nontso", 1)
        hit = run_victim_trial(spec, "dom-nontso", 0)
        assert miss.first_access(spec.target_iline) is None
        assert hit.first_access(spec.target_iline) is not None
        assert miss.core.stats.rs_full_stalls > hit.core.stats.rs_full_stalls
