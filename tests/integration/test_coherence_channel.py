"""The coherence-invalidation interference channel (extension).

A retirement-bound store's retire time is delayed by the GDNPEU gadget;
the store's write invalidates the attacker's cached copy of the line
(MESI), so a fixed-time probe of the attacker's *own* copy decodes the
secret — no load reordering, no replacement-state decoding (§3.3's
"many other memory address streams", Yao et al. HPCA'18).
"""

import pytest

from repro.core.harness import ATTACKER_CORE, prepare_machine
from repro.core.victims import gdnpeu_store_victim
from repro.system.agent import AttackerAgent


def store_retire_time(scheme, secret):
    spec = gdnpeu_store_victim()
    machine, core, _ = prepare_machine(spec, scheme, secret, trace=True)
    machine.run(until=lambda: core.halted, max_cycles=30_000)
    store = next(i for i in core.trace if i.name == "store A")
    return store.events["retire"]


def run_bit(scheme, secret, probe_cycle):
    spec = gdnpeu_store_victim()
    machine, core, _ = prepare_machine(spec, scheme, secret)
    agent = AttackerAgent(machine, ATTACKER_CORE)
    # Receiver setup: cache our own copy of A (Shared state).
    agent.read(spec.line_a)
    # Probe our own copy at the calibrated fixed time.
    agent.schedule_timed_read(spec.line_a, probe_cycle)
    machine.run(until=lambda: core.halted, max_cycles=30_000)
    observation = agent.scheduled_observations[0]
    # An L1-local hit -> our copy survived -> the store had NOT retired
    # yet -> the gadget interfered -> secret = 1.  (After invalidation
    # the probe is served by the LLC, so the discriminator is the
    # local-hit latency, not the LLC-miss threshold.)
    l1_threshold = machine.hierarchy.config.l1d.latency + 2
    return 1 if observation.latency <= l1_threshold else 0


class TestCoherenceChannel:
    def test_store_retire_shifts_with_secret(self):
        t0 = store_retire_time("dom-nontso", 0)
        t1 = store_retire_time("dom-nontso", 1)
        assert t1 - t0 > 20

    @pytest.mark.parametrize("scheme", ["dom-nontso", "invisispec-spectre"])
    def test_bits_decode_through_invalidation_timing(self, scheme):
        t0 = store_retire_time(scheme, 0)
        t1 = store_retire_time(scheme, 1)
        probe = (t0 + t1) // 2
        for secret in (0, 1, 1, 0):
            assert run_bit(scheme, secret, probe) == secret

    def test_fence_defense_blocks(self):
        t0 = store_retire_time("fence-spectre", 0)
        t1 = store_retire_time("fence-spectre", 1)
        assert t0 == t1  # nothing to calibrate: the channel is closed
        probe = t0 + 1
        assert run_bit("fence-spectre", 0, probe) == run_bit(
            "fence-spectre", 1, probe
        )

    def test_channel_requires_coherence(self):
        """With coherence disabled the attacker's stale copy never gets
        invalidated: every probe hits and the channel dies."""
        from dataclasses import replace

        from repro.core.victims import ATTACK_HIERARCHY, gdnpeu_store_victim

        cfg = replace(ATTACK_HIERARCHY, enable_coherence=False)
        spec = gdnpeu_store_victim()
        results = []
        for secret in (0, 1):
            machine, core, _ = prepare_machine(
                spec, "dom-nontso", secret, hierarchy_config=cfg
            )
            agent = AttackerAgent(machine, ATTACKER_CORE)
            agent.read(spec.line_a)
            agent.schedule_timed_read(spec.line_a, 127)
            machine.run(until=lambda: core.halted, max_cycles=30_000)
            results.append(agent.scheduled_observations[0].hit)
        assert results == [True, True]
