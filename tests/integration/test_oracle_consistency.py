"""Consistency of the execution views used by §5.1's checker:

the pipeline's retired-branch outcome stream must equal the
architectural (in-order) outcome stream, and replaying it through the
oracle predictor must produce a mis-speculation-free execution with
identical architectural results.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.instructions import OpClass
from repro.pipeline.branch import OraclePredictor
from repro.pipeline.dyninstr import Phase
from repro.workloads import random_program

from tests.conftest import run_on_scheme


def retired_branch_outcomes(core):
    return [
        bool(i.actual_taken)
        for i in core.trace
        if i.is_branch
        and i.phase is Phase.RETIRED
        and not i.static.unconditional
    ]


def architectural_branch_outcomes(program, *, budget=100_000):
    """Functional execution collecting conditional-branch outcomes."""
    outcomes = []
    registers, memory = {}, {}
    pc, executed = 0, 0
    while pc < len(program) and executed < budget:
        inst = program.at(pc)
        executed += 1
        nxt = pc + 1
        if inst.opclass is OpClass.HALT:
            break
        values = [registers.get(r, 0) for r in inst.srcs]
        if inst.opclass is OpClass.ALU:
            registers[inst.dst] = inst.compute(*values)
        elif inst.opclass is OpClass.LOAD:
            registers[inst.dst] = memory.get(inst.compute(*values), 0)
        elif inst.opclass is OpClass.STORE:
            memory[inst.compute(*values)] = registers.get(inst.value_src, 0)
        elif inst.opclass is OpClass.BRANCH:
            taken = bool(inst.compute(*values))
            if not inst.unconditional:
                outcomes.append(taken)
            if taken:
                nxt = program.branch_target_slot(pc)
        pc = nxt
    return outcomes


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=4000))
def test_branch_traces_agree(seed):
    program = random_program(seed)
    machine, core = run_on_scheme(program, None, max_cycles=400_000)
    assert retired_branch_outcomes(core) == architectural_branch_outcomes(program)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=4000))
def test_oracle_replay_has_no_squashes(seed):
    """The NoSpec(E) construction: replaying recorded outcomes through
    the oracle predictor is mis-speculation-free and result-identical."""
    program = random_program(seed)
    machine, core = run_on_scheme(program, None, max_cycles=400_000)
    outcomes = retired_branch_outcomes(core)
    machine2, core2 = run_on_scheme(
        program, None, predictor=OraclePredictor(outcomes), max_cycles=400_000
    )
    assert core2.stats.mispredicts == 0
    assert core2.stats.squashes == 0
    for reg, value in core.regfile.items():
        assert core2.regfile.get(reg) == value
