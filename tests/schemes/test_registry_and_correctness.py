"""Registry tests + the big cross-scheme correctness property:

No speculation scheme — attack target or defense — may ever change
architectural results.  Every scheme runs the random-program corpus and
the synthetic suite and must match the golden interpreter exactly.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import Interpreter
from repro.schemes import make_scheme, scheme_names
from repro.schemes.registry import SCHEME_FACTORIES, TABLE1_SCHEMES
from repro.workloads import random_program

from tests.conftest import run_on_scheme

ALL_SCHEMES = sorted(SCHEME_FACTORIES)


class TestRegistry:
    def test_all_names_construct(self):
        for name in scheme_names():
            scheme = make_scheme(name)
            assert scheme.name  # every scheme is self-describing

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            make_scheme("magic")

    def test_fresh_instances(self):
        assert make_scheme("dom-nontso") is not make_scheme("dom-nontso")

    def test_table1_schemes_subset(self):
        for name in TABLE1_SCHEMES:
            assert name in SCHEME_FACTORIES


@pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
def test_schemes_preserve_architectural_state(scheme_name):
    """Fixed-corpus differential test: 6 random programs per scheme."""
    for seed in (3, 17, 42, 99, 123, 500):
        program = random_program(seed)
        expected = Interpreter(program, max_instructions=100_000).run()
        machine, core = run_on_scheme(
            program, make_scheme(scheme_name), max_cycles=400_000
        )
        for reg, value in expected.registers.items():
            assert core.regfile.get(reg, 0) == value, (
                f"{scheme_name} seed {seed} reg {reg}"
            )
        for addr, value in expected.memory.items():
            assert machine.hierarchy.memory.peek(addr) == value, (
                f"{scheme_name} seed {seed} mem {addr:#x}"
            )


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=3000),
    scheme_name=st.sampled_from(ALL_SCHEMES),
)
def test_schemes_preserve_architectural_state_hypothesis(seed, scheme_name):
    program = random_program(seed)
    expected = Interpreter(program, max_instructions=100_000).run()
    machine, core = run_on_scheme(
        program, make_scheme(scheme_name), max_cycles=400_000
    )
    for reg, value in expected.registers.items():
        assert core.regfile.get(reg, 0) == value
