"""Delay-on-Miss value-prediction mode (Sakalis et al.'s full design).

Speculative misses return a last-value prediction instead of stalling;
validation happens at the safety point with a real access; mispredicted
values squash and replay consumers.
"""

import pytest

from repro.core.harness import run_victim_trial
from repro.core.spectre import spectre_leak_trial
from repro.core.victims import gdnpeu_arith_victim, gdnpeu_victim
from repro.isa import Interpreter, ProgramBuilder
from repro.schemes import DelayOnMiss, make_scheme
from repro.workloads import random_program

from tests.conftest import run_on_scheme

MISS_ADDR = 0x40_0C0
COND_ADDR = 0x48_080


class TestValuePredictionMechanics:
    def test_prediction_made_for_speculative_miss(self):
        scheme = DelayOnMiss("nontso", value_predict=True)
        b = ProgramBuilder()
        b.load_addr("n", COND_ADDR, name="slow cond")
        b.branch_if(["n"], lambda v: v > 10, "skip", name="branch")
        b.load_addr("x", MISS_ADDR, name="vp load")
        b.label("skip")
        b.halt()
        machine, core = run_on_scheme(b.build(), scheme, memory={MISS_ADDR: 7})
        assert scheme.value_predictions >= 1
        assert core.regfile["x"] == 7  # validated/replayed to truth

    def test_misprediction_counted_and_replayed(self):
        """Prediction starts at 0; memory holds 7: the first use must
        mispredict, replay, and still produce correct downstream values."""
        scheme = DelayOnMiss("nontso", value_predict=True)
        b = ProgramBuilder()
        b.load_addr("n", COND_ADDR, name="slow cond")
        b.branch_if(["n"], lambda v: v > 10, "skip", name="branch")
        b.load_addr("x", MISS_ADDR, name="vp load")
        b.addi("y", "x", 1, name="consumer")
        b.label("skip")
        b.halt()
        machine, core = run_on_scheme(b.build(), scheme, memory={MISS_ADDR: 7})
        assert scheme.value_mispredictions >= 1
        assert core.regfile["y"] == 8

    def test_correct_prediction_avoids_replay(self):
        """Second execution of the same static load predicts correctly
        (last-value) and needs no replay."""
        scheme = DelayOnMiss("nontso", value_predict=True)
        b = ProgramBuilder()
        b.imm("i", 0)
        b.label("head")
        b.load_addr("n", COND_ADDR, name="slow cond")
        b.branch_if(["n"], lambda v: v > 10, "skip", name="branch")
        b.load_addr("x", MISS_ADDR, name="vp load")
        b.label("skip")
        b.addi("i", "i", 1)
        b.branch_if(["i"], lambda v: v < 3, "head")
        b.halt()
        machine, core = run_on_scheme(b.build(), scheme, memory={MISS_ADDR: 7})
        assert core.regfile["x"] == 7
        assert scheme.value_mispredictions <= 1  # only the cold first use

    def test_no_memory_request_for_prediction(self):
        """PREDICT must not allocate MSHRs or touch the hierarchy before
        validation (there is nothing to make invisible)."""
        scheme = DelayOnMiss("nontso", value_predict=True)
        b = ProgramBuilder()
        b.load_addr("n", COND_ADDR, name="slow cond")
        b.branch_if(["n"], lambda v: v > 10, "body", name="branch")
        b.jump("end")
        b.label("body")
        b.load_addr("x", MISS_ADDR, name="vp load")  # squashed later
        b.label("end")
        b.halt()
        from repro.pipeline.branch import StaticTakenPredictor

        machine, core = run_on_scheme(
            b.build(), scheme, predictor=StaticTakenPredictor(True)
        )
        # squashed before validation: the line was never requested
        assert machine.hierarchy.hit_level(0, MISS_ADDR) == "DRAM"
        assert all(e.line != MISS_ADDR for e in machine.hierarchy.visible_log)

    def test_registry_name(self):
        assert make_scheme("dom-nontso-vp").name == "dom-nontso-vp"


class TestValuePredictionCorrectness:
    @pytest.mark.parametrize("seed", [3, 17, 42, 256, 1001])
    def test_architectural_equivalence(self, seed):
        program = random_program(seed)
        expected = Interpreter(program, max_instructions=100_000).run()
        machine, core = run_on_scheme(
            program, make_scheme("dom-nontso-vp"), max_cycles=400_000
        )
        for reg, value in expected.registers.items():
            assert core.regfile.get(reg, 0) == value
        for addr, value in expected.memory.items():
            assert machine.hierarchy.memory.peek(addr) == value


class TestValuePredictionSecurity:
    def test_blocks_spectre(self):
        assert spectre_leak_trial("dom-nontso-vp", 7).hits == []

    def test_neutralizes_load_transmitter(self):
        """A predicted miss returns as fast as a hit: the hit/miss
        timing differential that drives GDNPEU's load transmitter
        disappears (interference happens for both secrets)."""
        spec = gdnpeu_victim()
        orders = [
            run_victim_trial(spec, "dom-nontso-vp", s).order(
                spec.line_a, spec.line_b
            )
            for s in (0, 1)
        ]
        assert orders[0] == orders[1]

    def test_arith_transmitter_still_leaks(self):
        """...but the transmitter class matters: data-dependent
        arithmetic is untouched by value prediction."""
        spec = gdnpeu_arith_victim()
        orders = [
            run_victim_trial(spec, "dom-nontso-vp", s).order(
                spec.line_a, spec.line_b
            )
            for s in (0, 1)
        ]
        assert orders[0] != orders[1]
