"""STT tests: the §6 comparison point made executable.

STT blocks every interference attack that leaks *transiently accessed*
data, but not the bound-to-retire variant — exactly the paper's claim.
"""

import pytest

from repro.core.harness import run_victim_trial
from repro.core.spectre import spectre_leak_trial
from repro.core.victims import (
    gdmshr_victim,
    gdnpeu_architectural_victim,
    gdnpeu_arith_victim,
    gdnpeu_victim,
    girs_victim,
)
from repro.isa import Interpreter, ProgramBuilder
from repro.pipeline.branch import StaticTakenPredictor
from repro.schemes import STT
from repro.workloads import random_program

from tests.conftest import run_on_scheme


class TestTaintMechanics:
    def test_tainted_transmitter_blocked(self):
        """A load whose address derives from a speculative load's value
        must not issue while the producer is speculative."""
        scheme = STT("spectre")
        b = ProgramBuilder()
        b.load_addr("n", 0x48_080, name="slow cond")
        b.branch_if(["n"], lambda v: v > 10, "body", name="branch")
        b.jump("end")
        b.label("body")
        b.load_addr("j", 0x40_0C0, name="access")       # untainted addr: runs
        b.load("x", ["j"], lambda v: 0x44_040 + v, name="transmit")  # tainted
        b.label("end")
        b.halt()
        program = b.build()
        from repro.system.machine import Machine
        from tests.conftest import small_hierarchy_config

        machine = Machine(2, hierarchy_config=small_hierarchy_config())
        machine.warm_icache(0, program)
        # prime the access line so the tainted transmitter becomes ready
        # well inside the speculative window
        machine.warm_data(0, [0x40_0C0], level="L1")
        core = machine.attach(
            0, program, scheme, predictor=StaticTakenPredictor(True), trace=True
        )
        machine.run(until=lambda: core.halted, max_cycles=100_000)
        assert scheme.blocked_issues > 0
        transmits = [i for i in core.trace if i.name == "transmit"]
        assert all("issue" not in i.events for i in transmits)

    def test_taint_clears_when_root_safe(self):
        """On the correct path the root becomes safe, the transmitter
        unblocks, and the result is architecturally correct."""
        scheme = STT("spectre")
        b = ProgramBuilder()
        b.load_addr("n", 0x48_080, name="slow cond")
        b.branch_if(["n"], lambda v: v > 10, "skip", name="branch")
        b.load_addr("j", 0x40_0C0, name="access")
        b.load("x", ["j"], lambda v: 0x44_040 + v, name="transmit")
        b.label("skip")
        b.halt()
        machine, core = run_on_scheme(
            b.build(), scheme, memory={0x40_0C0: 64, 0x44_040 + 64: 9}
        )
        assert core.regfile["x"] == 9

    def test_untainted_work_flows_freely(self):
        scheme = STT("spectre")
        b = ProgramBuilder()
        b.imm("a", 1)
        b.addi("b", "a", 2)
        machine, core = run_on_scheme(b.build(), scheme)
        assert core.regfile["b"] == 3
        assert scheme.blocked_issues == 0

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            STT("paranoid")


class TestSTTSecurity:
    def test_blocks_spectre(self):
        assert spectre_leak_trial("stt", 7).hits == []

    @pytest.mark.parametrize(
        "builder", [gdnpeu_victim, gdnpeu_arith_victim], ids=["load-tx", "arith-tx"]
    )
    def test_blocks_transient_interference(self, builder):
        spec = builder()
        orders = [
            run_victim_trial(spec, "stt", s).order(spec.line_a, spec.line_b)
            for s in (0, 1)
        ]
        assert orders[0] == orders[1]

    def test_blocks_gdmshr(self):
        spec = gdmshr_victim()
        times = [
            run_victim_trial(spec, "stt", s).first_access(spec.line_a)
            for s in (0, 1)
        ]
        assert times[0] == times[1]

    def test_blocks_girs(self):
        spec = girs_victim()
        times = [
            run_victim_trial(spec, "stt", s).first_access(spec.target_iline)
            for s in (0, 1)
        ]
        assert times[0] == times[1]

    def test_does_not_block_bound_to_retire_secret(self):
        """The paper's §6 limitation: an architecturally accessed secret
        is untainted, and the interference channel leaks it."""
        spec = gdnpeu_architectural_victim()
        orders = [
            run_victim_trial(spec, "stt", s).order(spec.line_a, spec.line_b)
            for s in (0, 1)
        ]
        assert orders[0] != orders[1]


class TestSTTCorrectness:
    @pytest.mark.parametrize("seed", [2, 11, 77, 203])
    def test_architectural_equivalence(self, seed):
        program = random_program(seed)
        expected = Interpreter(program, max_instructions=100_000).run()
        machine, core = run_on_scheme(program, STT("spectre"), max_cycles=400_000)
        for reg, value in expected.registers.items():
            assert core.regfile.get(reg, 0) == value
