"""Delay-on-Miss behaviour tests (§2.2)."""

import pytest

from repro.isa import ProgramBuilder
from repro.pipeline.branch import StaticTakenPredictor
from repro.pipeline.scheme_api import SafetyModel
from repro.schemes import DelayOnMiss

from tests.conftest import run_on_scheme, small_hierarchy_config

# distinct L1 sets (16-set L1 in the test hierarchy)
MISS_ADDR = 0x40_0C0
HIT_ADDR = 0x44_040
COND_ADDR = 0x48_080


def speculative_load_program(addr):
    """A load in the shadow of a slow, mispredicted (taken) branch."""
    b = ProgramBuilder()
    b.load_addr("n", COND_ADDR, name="slow cond")  # DRAM miss: long shadow
    b.branch_if(["n"], lambda v: v > 10, "body", name="branch")
    b.jump("end")
    b.label("body")
    b.load_addr("x", addr, name="spec load")
    b.label("end")
    b.halt()
    return b.build()


class TestDelayOnMiss:
    def test_speculative_miss_is_delayed(self):
        """A speculative L1 miss must not access memory until the squash
        resolves it (here: it is squashed, so it never runs)."""
        scheme = DelayOnMiss("nontso")
        program = speculative_load_program(MISS_ADDR)
        machine, core = run_on_scheme(
            program, scheme, predictor=StaticTakenPredictor(True)
        )
        assert scheme.delayed_misses >= 1
        # squashed before becoming safe: the line was never fetched
        assert machine.hierarchy.hit_level(0, MISS_ADDR) == "DRAM"
        assert all(e.line != MISS_ADDR for e in machine.hierarchy.visible_log)

    def test_speculative_hit_serves_data_invisibly(self):
        scheme = DelayOnMiss("nontso")
        program = speculative_load_program(HIT_ADDR)
        hierarchy = small_hierarchy_config()
        machine, core = run_on_scheme(
            program,
            scheme,
            predictor=StaticTakenPredictor(True),
            memory={HIT_ADDR: 55},
            hierarchy=hierarchy,
        )
        assert scheme.invisible_hits == 0  # line was not primed -> miss
        # now with the line primed in L1
        scheme = DelayOnMiss("nontso")
        from repro.system.machine import Machine

        machine = Machine(num_cores=2, hierarchy_config=hierarchy)
        machine.hierarchy.memory.write(HIT_ADDR, 55)
        machine.warm_icache(0, program)
        machine.warm_data(0, [HIT_ADDR], level="L1")
        core = machine.attach(
            0, program, scheme, predictor=StaticTakenPredictor(True), trace=True
        )
        machine.run(until=lambda: core.halted, max_cycles=100_000)
        assert scheme.invisible_hits >= 1

    def test_deferred_touch_dropped_on_squash(self):
        """An invisible speculative hit defers its replacement update;
        a squash must drop it (no promotion happens)."""
        scheme = DelayOnMiss("nontso")
        program = speculative_load_program(HIT_ADDR)
        from repro.system.machine import Machine

        machine = Machine(num_cores=2, hierarchy_config=small_hierarchy_config())
        machine.warm_icache(0, program)
        machine.warm_data(0, [HIT_ADDR], level="L1")
        l1 = machine.hierarchy.l1d[0]
        before = l1.set_policy_state(HIT_ADDR)
        core = machine.attach(
            0, program, scheme, predictor=StaticTakenPredictor(True)
        )
        machine.run(until=lambda: core.halted, max_cycles=100_000)
        assert scheme.invisible_hits >= 1
        assert not scheme._deferred_touch  # dropped by the squash
        assert l1.set_policy_state(HIT_ADDR) == before

    def test_safe_load_visible(self):
        """Non-speculative loads behave normally (visible fills)."""
        scheme = DelayOnMiss("nontso")
        b = ProgramBuilder()
        b.load_addr("x", MISS_ADDR, name="plain load")
        machine, core = run_on_scheme(b.build(), scheme)
        assert machine.hierarchy.l1_hit(0, MISS_ADDR)

    def test_delayed_load_reissues_when_safe(self):
        """A delayed speculative load on the *correct* path re-executes
        once the branch resolves, and retires with the right value."""
        scheme = DelayOnMiss("nontso")
        b = ProgramBuilder()
        b.load_addr("n", COND_ADDR, name="slow cond")
        # not-taken branch; body is the fall-through (correct) path
        b.branch_if(["n"], lambda v: v > 10, "skip", name="branch")
        b.load_addr("x", MISS_ADDR, name="correct-path load")
        b.label("skip")
        b.halt()
        machine, core = run_on_scheme(
            b.build(), scheme, memory={MISS_ADDR: 77}
        )
        assert core.regfile["x"] == 77
        assert scheme.delayed_misses >= 1
        assert machine.hierarchy.l1_hit(0, MISS_ADDR)

    def test_memory_model_selects_safety(self):
        assert DelayOnMiss("nontso").safety is SafetyModel.NONTSO
        assert DelayOnMiss("tso").safety is SafetyModel.TSO
        with pytest.raises(ValueError):
            DelayOnMiss("sc")

    def test_icache_unprotected(self):
        scheme = DelayOnMiss("nontso")
        assert not scheme.protects_icache
        assert scheme.fetch_visible(None, speculative=True)
