"""Behaviour tests for InvisiSpec, SafeSpec, MuonTrap, CondSpec,
CleanupSpec: the cache-visibility contracts each proposal makes."""

import pytest

from repro.isa import ProgramBuilder
from repro.pipeline.branch import StaticTakenPredictor
from repro.pipeline.scheme_api import SafetyModel
from repro.schemes import (
    CleanupSpec,
    ConditionalSpeculation,
    InvisiSpec,
    MuonTrap,
    SafeSpec,
)

from tests.conftest import run_on_scheme

SPEC_ADDR = 0x40_0C0
COND_ADDR = 0x48_080
PLAIN_ADDR = 0x4C_100


def squashed_load_program(addr):
    """A load that executes speculatively and is then squashed."""
    b = ProgramBuilder()
    b.load_addr("n", COND_ADDR, name="slow cond")
    b.branch_if(["n"], lambda v: v > 10, "body", name="branch")
    b.jump("end")
    b.label("body")
    b.load_addr("x", addr, name="spec load")
    b.label("end")
    b.halt()
    return b.build()


def correct_path_load_program(addr):
    """A speculative load that survives (correct path) and becomes safe."""
    b = ProgramBuilder()
    b.load_addr("n", COND_ADDR, name="slow cond")
    b.branch_if(["n"], lambda v: v > 10, "skip", name="branch")
    b.load_addr("x", addr, name="surviving load")
    b.label("skip")
    b.halt()
    return b.build()


class TestInvisiSpec:
    def test_squashed_load_leaves_no_cache_state(self):
        scheme = InvisiSpec("spectre")
        machine, core = run_on_scheme(
            squashed_load_program(SPEC_ADDR),
            scheme,
            predictor=StaticTakenPredictor(True),
        )
        assert scheme.invisible_loads >= 1
        assert machine.hierarchy.hit_level(0, SPEC_ADDR) == "DRAM"
        assert all(e.line != SPEC_ADDR for e in machine.hierarchy.visible_log)

    def test_surviving_load_exposed_when_safe(self):
        scheme = InvisiSpec("spectre")
        machine, core = run_on_scheme(
            correct_path_load_program(SPEC_ADDR), scheme, memory={SPEC_ADDR: 9}
        )
        assert core.regfile["x"] == 9
        assert scheme.exposures >= 1
        assert machine.hierarchy.l1_hit(0, SPEC_ADDR)

    def test_speculative_miss_allocates_mshr(self):
        """The property GDMSHR exploits: invisible misses hold MSHRs."""
        scheme = InvisiSpec("spectre")
        machine, core = run_on_scheme(
            squashed_load_program(SPEC_ADDR),
            scheme,
            predictor=StaticTakenPredictor(True),
        )
        assert machine.hierarchy.l1d_mshrs[0].allocations >= 1

    def test_modes(self):
        assert InvisiSpec("spectre").safety is SafetyModel.SPECTRE
        assert InvisiSpec("futuristic").safety is SafetyModel.FUTURISTIC
        with pytest.raises(ValueError):
            InvisiSpec("both")

    def test_futuristic_serializes_exposures(self):
        scheme = InvisiSpec("futuristic")
        b = ProgramBuilder()
        b.load_addr("a", SPEC_ADDR, name="ld a")
        b.load_addr("b", SPEC_ADDR + 0x1000, name="ld b")
        machine, core = run_on_scheme(b.build(), scheme)
        log = [e for e in machine.hierarchy.visible_log]
        la = next(e.cycle for e in log if e.line == SPEC_ADDR)
        lb = next(e.cycle for e in log if e.line == SPEC_ADDR + 0x1000)
        assert la < lb  # visible accesses in program order


class TestSafeSpec:
    def test_shadow_reuse(self):
        """Two speculative loads to one line: the second hits the shadow."""
        scheme = SafeSpec("wfb")
        b = ProgramBuilder()
        b.load_addr("n", COND_ADDR, name="slow cond")
        b.branch_if(["n"], lambda v: v > 10, "body", name="branch")
        b.jump("end")
        b.label("body")
        b.load_addr("x1", SPEC_ADDR, name="spec1")
        b.load_addr("x2", SPEC_ADDR + 8, name="spec2")
        b.label("end")
        b.halt()
        machine, core = run_on_scheme(
            b.build(), scheme, predictor=StaticTakenPredictor(True)
        )
        assert scheme.shadow_hits >= 1

    def test_squash_clears_shadow(self):
        scheme = SafeSpec("wfb")
        machine, core = run_on_scheme(
            squashed_load_program(SPEC_ADDR),
            scheme,
            predictor=StaticTakenPredictor(True),
        )
        line = machine.hierarchy.llc.layout.line_addr(SPEC_ADDR)
        assert not scheme.shadow_contains(0, line)

    def test_protects_icache(self):
        assert SafeSpec("wfb").protects_icache

    def test_surviving_load_exposed(self):
        scheme = SafeSpec("wfb")
        machine, core = run_on_scheme(
            correct_path_load_program(SPEC_ADDR), scheme, memory={SPEC_ADDR: 4}
        )
        assert core.regfile["x"] == 4
        assert scheme.exposures >= 1
        assert machine.hierarchy.l1_hit(0, SPEC_ADDR)


class TestMuonTrap:
    def test_filter_fill_and_flush_on_squash(self):
        scheme = MuonTrap()
        machine, core = run_on_scheme(
            squashed_load_program(SPEC_ADDR),
            scheme,
            predictor=StaticTakenPredictor(True),
        )
        assert scheme.filter_fills >= 1
        assert not scheme.filter_for(0).contains(SPEC_ADDR)
        assert machine.hierarchy.hit_level(0, SPEC_ADDR) == "DRAM"

    def test_filter_hit_on_reuse(self):
        scheme = MuonTrap()
        b = ProgramBuilder()
        b.load_addr("n", COND_ADDR, name="slow cond")
        b.branch_if(["n"], lambda v: v > 10, "body", name="branch")
        b.jump("end")
        b.label("body")
        b.load_addr("x1", SPEC_ADDR, name="spec1")
        b.load_addr("x2", SPEC_ADDR + 8, name="spec2")
        b.label("end")
        b.halt()
        machine, core = run_on_scheme(
            b.build(), scheme, predictor=StaticTakenPredictor(True)
        )
        assert scheme.filter_hits >= 1

    def test_promotion_when_safe(self):
        scheme = MuonTrap()
        machine, core = run_on_scheme(
            correct_path_load_program(SPEC_ADDR), scheme, memory={SPEC_ADDR: 3}
        )
        assert core.regfile["x"] == 3
        assert scheme.promotions >= 1
        assert machine.hierarchy.l1_hit(0, SPEC_ADDR)


class TestConditionalSpeculation:
    def test_speculative_miss_delayed(self):
        scheme = ConditionalSpeculation()
        machine, core = run_on_scheme(
            squashed_load_program(SPEC_ADDR),
            scheme,
            predictor=StaticTakenPredictor(True),
        )
        assert scheme.delayed_misses >= 1
        assert machine.hierarchy.hit_level(0, SPEC_ADDR) == "DRAM"

    def test_correct_result_on_surviving_path(self):
        scheme = ConditionalSpeculation()
        machine, core = run_on_scheme(
            correct_path_load_program(SPEC_ADDR), scheme, memory={SPEC_ADDR: 8}
        )
        assert core.regfile["x"] == 8


class TestCleanupSpec:
    def test_squashed_fill_rolled_back(self):
        """The undo log removes the mis-speculated fill after a squash."""
        scheme = CleanupSpec()
        machine, core = run_on_scheme(
            squashed_load_program(SPEC_ADDR),
            scheme,
            predictor=StaticTakenPredictor(True),
        )
        assert scheme.rollbacks >= 1
        assert machine.hierarchy.hit_level(0, SPEC_ADDR) == "DRAM"

    def test_surviving_fill_kept(self):
        scheme = CleanupSpec()
        machine, core = run_on_scheme(
            correct_path_load_program(SPEC_ADDR), scheme, memory={SPEC_ADDR: 2}
        )
        assert core.regfile["x"] == 2
        assert machine.hierarchy.l1_hit(0, SPEC_ADDR)
        assert scheme.rollbacks == 0
