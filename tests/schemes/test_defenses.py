"""Tests for the paper's defenses: fence (§5.2) and priority (§5.4)."""

import pytest

from repro.isa import ProgramBuilder
from repro.pipeline.branch import StaticTakenPredictor
from repro.pipeline.dyninstr import Phase
from repro.schemes import DelayOnMiss, FenceDefense, PriorityDefense

from tests.conftest import run_on_scheme

SPEC_ADDR = 0x40_0C0
COND_ADDR = 0x48_080


class TestFenceDefense:
    def test_no_speculative_issue_past_branch(self):
        """With the Spectre fence, nothing younger than an unresolved
        branch issues — the mis-speculated load never executes."""
        scheme = FenceDefense("spectre")
        b = ProgramBuilder()
        b.load_addr("n", COND_ADDR, name="slow cond")
        b.branch_if(["n"], lambda v: v > 10, "body", name="branch")
        b.jump("end")
        b.label("body")
        b.load_addr("x", SPEC_ADDR, name="spec load")
        b.label("end")
        b.halt()
        machine, core = run_on_scheme(
            b.build(), scheme, predictor=StaticTakenPredictor(True)
        )
        assert scheme.issue_blocks > 0
        spec_loads = [i for i in core.trace if i.name == "spec load"]
        assert all("issue" not in i.events for i in spec_loads)
        assert machine.hierarchy.hit_level(0, SPEC_ADDR) == "DRAM"

    def test_spectre_model_allows_pre_branch_parallelism(self):
        """Independent work older than any branch issues freely."""
        scheme = FenceDefense("spectre")
        b = ProgramBuilder()
        for i in range(8):
            b.alu(f"r{i}", [], lambda i=i: i, port=1 if i % 2 else 5, name=f"op{i}")
        b.load_addr("n", COND_ADDR, name="cond")
        b.branch_if(["n"], lambda v: v > 10, "out", name="branch")
        b.label("out")
        b.halt()
        machine, core = run_on_scheme(b.build(), scheme)
        issues = sorted(
            i.events["issue"]
            for i in core.trace
            if i.name.startswith("op") and "issue" in i.events
        )
        # at least two ops issued in the same cycle: parallelism survives
        assert len(issues) - len(set(issues)) >= 1

    def test_futuristic_serializes_issue(self):
        scheme = FenceDefense("futuristic")
        b = ProgramBuilder()
        for i in range(8):
            b.imm(f"r{i}", i, name=f"op{i}")
        machine, core = run_on_scheme(b.build(), scheme)
        issues = sorted(
            i.events["issue"]
            for i in core.trace
            if i.name.startswith("op") and "issue" in i.events
        )
        assert len(set(issues)) == len(issues)  # one at a time

    def test_architectural_correctness(self):
        for model in ("spectre", "futuristic"):
            b = ProgramBuilder()
            b.imm("i", 0)
            b.imm("acc", 0)
            b.label("head")
            b.add("acc", "acc", "i")
            b.addi("i", "i", 1)
            b.branch_if(["i"], lambda v: v < 6, "head")
            machine, core = run_on_scheme(b.build(), FenceDefense(model))
            assert core.regfile["acc"] == sum(range(6))

    def test_invalid_model_rejected(self):
        with pytest.raises(ValueError):
            FenceDefense("paranoid")


class TestPriorityDefense:
    def test_preemption_counter_increments(self):
        """An older op evicts a younger occupant of the non-pipelined
        unit (§5.4 'squashable EU')."""
        scheme = PriorityDefense(DelayOnMiss("nontso"))
        b = ProgramBuilder()
        # Older chain (slow producer -> port 0), younger ready op on port 0.
        b.alu("z", [], lambda: 7, latency=20, port=1, name="z")
        b.alu("f1", ["z"], lambda v: v + 1, latency=15, port=0, name="f1")
        b.alu("g1", [], lambda: 1, latency=15, port=0, name="g1")
        b.alu("g2", [], lambda: 2, latency=15, port=0, name="g2")
        machine, core = run_on_scheme(b.build(), scheme)
        assert core.stats.eu_preemptions >= 1
        assert core.regfile["f1"] == 8  # re-issued occupant still correct

    def test_older_not_delayed_by_younger(self):
        """With preemption, f1 issues as soon as it is ready even if a
        younger op grabbed the unit first."""
        def gap(scheme):
            b = ProgramBuilder()
            b.alu("z", [], lambda: 7, latency=20, port=1, name="z")
            b.alu("f1", ["z"], lambda v: v + 1, latency=15, port=0, name="f1")
            for i in range(4):
                b.alu(f"g{i}", [], lambda: 1, latency=15, port=0, name=f"g{i}")
            machine, core = run_on_scheme(b.build(), scheme)
            z = next(i for i in core.trace if i.name == "z")
            f1 = next(i for i in core.trace if i.name == "f1")
            return f1.events["issue"] - z.events["complete"]

        baseline_gap = gap(DelayOnMiss("nontso"))
        defended_gap = gap(PriorityDefense(DelayOnMiss("nontso")))
        assert defended_gap <= 2
        assert baseline_gap > defended_gap

    def test_architectural_correctness_with_preemption(self):
        scheme = PriorityDefense(DelayOnMiss("nontso"))
        b = ProgramBuilder()
        b.alu("z", [], lambda: 3, latency=20, port=1, name="z")
        prev = "z"
        for i in range(4):
            b.alu(f"f{i}", [prev], lambda v: v * 2, latency=15, port=0, name=f"f{i}")
            prev = f"f{i}"
        for i in range(6):
            b.alu(f"g{i}", [], lambda i=i: i, latency=15, port=0, name=f"g{i}")
        machine, core = run_on_scheme(b.build(), scheme)
        assert core.regfile[prev] == 3 * 16
        for i in range(6):
            assert core.regfile[f"g{i}"] == i

    def test_delegates_to_base(self):
        base = DelayOnMiss("tso")
        scheme = PriorityDefense(base)
        assert scheme.safety is base.safety
        assert scheme.name == "priority+dom-tso"
        assert scheme.hold_rs_until_safe
        assert scheme.preempt_eus
