"""Idle-cycle fast-forward must be cycle-exact.

Every counter in CoreStats (and the architectural state) must be
identical with fast-forwarding on and off: the fast path is a pure
performance optimisation, and figures 3-5 timelines depend on exact
per-cycle accounting.
"""

import pytest

from repro.core.harness import prepare_machine
from repro.core.victims import gdmshr_victim, gdnpeu_victim
from repro.memory.hierarchy import CacheHierarchy
from repro.pipeline import Core
from repro.system.machine import Machine
from repro.workloads.synthetic import workload_by_name


def _run_workload_core(name: str, fast_forward: bool) -> Core:
    workload = workload_by_name(name)
    hierarchy = CacheHierarchy(1)
    for addr, value in workload.memory_image.items():
        hierarchy.memory.write(addr, value)
    core = Core(0, workload.program, hierarchy)
    core.run(max_cycles=500_000, fast_forward=fast_forward)
    return core


@pytest.mark.parametrize("name", ["pointer_chase", "mixed"])
def test_fast_forward_core_stats_identical(name):
    slow = _run_workload_core(name, fast_forward=False)
    fast = _run_workload_core(name, fast_forward=True)
    assert fast.halted and slow.halted
    assert fast.stats == slow.stats  # every CoreStats counter, cycle-exact
    assert fast.regfile == slow.regfile
    assert [eu.busy_cycles for eu in fast.eus] == [
        eu.busy_cycles for eu in slow.eus
    ]


@pytest.mark.parametrize(
    "scheme",
    ["unsafe", "dom-nontso", "invisispec-spectre", "muontrap", "fence-futuristic"],
)
def test_fast_forward_machine_trial_identical(scheme):
    """Whole-machine victim trials: same stats and same visible-LLC log
    (the attack's observable) with and without fast-forwarding."""
    results = {}
    for ff in (False, True):
        spec = gdnpeu_victim()
        machine, core, _ = prepare_machine(spec, scheme, 1)
        machine.run(until=lambda: core.halted, max_cycles=20_000, fast_forward=ff)
        results[ff] = (
            core.stats,
            machine.cycle,
            [(e.line, e.cycle) for e in machine.hierarchy.visible_log],
        )
    assert results[True] == results[False]


def test_fast_forward_mshr_victim_identical():
    spec = gdmshr_victim(variant="vd-vd")
    stats = {}
    for ff in (False, True):
        machine, core, _ = prepare_machine(spec, "muontrap", 1)
        machine.run(until=lambda: core.halted, max_cycles=20_000, fast_forward=ff)
        stats[ff] = (core.stats, core.lsu.stats_mshr_blocked_cycles)
    assert stats[True] == stats[False]


def test_machine_auto_gating():
    """fast_forward=None means: on for plain runs, off when an `until`
    predicate could observe intermediate cycles."""
    workload = workload_by_name("ilp")
    cycles = {}
    for ff in (None, False):
        machine = Machine(num_cores=1)
        for addr, value in workload.memory_image.items():
            machine.hierarchy.memory.write(addr, value)
        machine.warm_icache(0, workload.program)
        core = machine.attach(0, workload.program)
        machine.run(max_cycles=500_000, fast_forward=ff)
        cycles[ff] = core.stats.cycles
    assert cycles[None] == cycles[False]
