"""Micro-architectural behaviour tests: the properties the paper's
interference gadgets exploit must hold in our pipeline.

These are the unit-level versions of §3.2.2: non-pipelined EU occupancy
delaying older instructions, MSHR exhaustion delaying an unrelated load,
and RS back-pressure throttling the frontend.
"""

import pytest

from repro.isa import ProgramBuilder
from repro.memory.hierarchy import CacheHierarchy
from repro.pipeline import Core, CoreConfig
from repro.pipeline.dyninstr import Phase

from tests.conftest import small_hierarchy_config


def build_core(program, *, config=None, registers=None, mshrs=4, warm_icache=False):
    hierarchy = CacheHierarchy(1, small_hierarchy_config(l1d_mshrs=mshrs))
    if warm_icache:
        for slot in range(len(program)):
            addr = program.address_of_slot(slot)
            hierarchy.l1i[0].fill(addr & ~63)
    return Core(
        0,
        program,
        hierarchy,
        config=config or CoreConfig(),
        registers=registers,
        trace=True,
    )


def retired(core, name):
    return [
        i
        for i in core.trace
        if i.phase is Phase.RETIRED and i.name == name
    ]


class TestNonPipelinedUnit:
    def test_two_sqrts_serialize(self):
        b = ProgramBuilder()
        b.imm("a", 100)
        b.imm("b", 200)
        b.alu("x", ["a"], lambda v: v + 1, latency=15, port=0, name="sqrt1")
        b.alu("y", ["b"], lambda v: v + 1, latency=15, port=0, name="sqrt2")
        core = build_core(b.build())
        core.run()
        s1 = retired(core, "sqrt1")[0]
        s2 = retired(core, "sqrt2")[0]
        assert s2.events["issue"] >= s1.events["issue"] + 15

    def test_pipelined_port_overlaps(self):
        b = ProgramBuilder()
        b.imm("a", 100)
        b.imm("b", 200)
        b.alu("x", ["a"], lambda v: v + 1, latency=15, port=1, name="op1")
        b.alu("y", ["b"], lambda v: v + 1, latency=15, port=1, name="op2")
        core = build_core(b.build())
        core.run()
        o1 = retired(core, "op1")[0]
        o2 = retired(core, "op2")[0]
        assert o2.events["issue"] == o1.events["issue"] + 1

    def test_age_ordered_selection(self):
        """When two ops are ready for one port, the older issues first."""
        b = ProgramBuilder()
        b.imm("a", 1)
        b.alu("x", ["a"], lambda v: v, latency=5, port=0, name="older")
        b.alu("y", ["a"], lambda v: v, latency=5, port=0, name="younger")
        core = build_core(b.build())
        core.run()
        assert (
            retired(core, "older")[0].events["issue"]
            < retired(core, "younger")[0].events["issue"]
        )

    def test_ready_younger_blocks_waking_older(self):
        """The GDNPEU primitive (Fig. 3): a ready younger op grabs the
        non-pipelined unit while the older dependent op wakes up,
        delaying it by a full occupancy."""
        b = ProgramBuilder()
        # Older chain: z (slow producer) -> f1 -> f2 on port 0.
        b.alu("z", [], lambda: 7, latency=20, port=1, name="z")
        b.alu("f1", ["z"], lambda v: v + 1, latency=15, port=0, name="f1")
        b.alu("f2", ["f1"], lambda v: v + 1, latency=15, port=0, name="f2")
        # Younger, immediately-ready contenders for port 0.
        b.alu("g1", [], lambda: 1, latency=15, port=0, name="g1")
        b.alu("g2", [], lambda: 2, latency=15, port=0, name="g2")
        b.alu("g3", [], lambda: 3, latency=15, port=0, name="g3")
        core = build_core(b.build())
        core.run()
        f1 = retired(core, "f1")[0]
        f2 = retired(core, "f2")[0]
        # Baseline without interference: f2 issues ~16-17 cycles after f1.
        # With g-ops stealing the unit during f1->f2 wakeup, the gap
        # includes a full extra occupancy (15 cycles).
        gap = f2.events["issue"] - f1.events["issue"]
        assert gap >= 15 + 15, f"no interference cascade, gap={gap}"

    def test_no_interference_without_contenders(self):
        b = ProgramBuilder()
        b.alu("z", [], lambda: 7, latency=20, port=1, name="z")
        b.alu("f1", ["z"], lambda v: v + 1, latency=15, port=0, name="f1")
        b.alu("f2", ["f1"], lambda v: v + 1, latency=15, port=0, name="f2")
        core = build_core(b.build())
        core.run()
        f1 = retired(core, "f1")[0]
        f2 = retired(core, "f2")[0]
        gap = f2.events["issue"] - f1.events["issue"]
        assert gap <= 18, f"unexpected delay without gadget, gap={gap}"


class TestWakeupDelay:
    def test_dependent_issue_after_broadcast(self):
        b = ProgramBuilder()
        b.imm("a", 1, name="producer")
        b.addi("b", "a", 1, name="consumer")
        core = build_core(b.build())
        core.run()
        producer = retired(core, "producer")[0]
        consumer = retired(core, "consumer")[0]
        assert consumer.events["issue"] > producer.events["complete"]


class TestCDBContention:
    def test_width_one_serializes_broadcasts(self):
        config = CoreConfig(cdb_width=1)
        b = ProgramBuilder()
        for i in range(6):
            b.imm(f"r{i}", i, name=f"op{i}")
        core = build_core(b.build(), config=config)
        core.run()
        completes = sorted(
            i.events["complete"]
            for i in core.trace
            if i.phase is Phase.RETIRED and i.name.startswith("op")
        )
        assert len(set(completes)) == len(completes)  # one per cycle

    def test_wider_cdb_allows_pairs(self):
        config = CoreConfig(cdb_width=2)
        b = ProgramBuilder()
        for i in range(6):
            # alternate ports so pairs finish in the same cycle
            b.alu(f"r{i}", [], lambda i=i: i, port=1 if i % 2 else 5, name=f"op{i}")
        core = build_core(b.build(), config=config)
        core.run()
        completes = [
            i.events["complete"]
            for i in core.trace
            if i.phase is Phase.RETIRED and i.name.startswith("op")
        ]
        assert len(completes) - len(set(completes)) >= 1


class TestMSHRPressure:
    def test_mshr_exhaustion_delays_independent_load(self):
        """The GDMSHR primitive (Fig. 4): distinct-line misses exhaust
        MSHRs, delaying a later load; same-line misses coalesce and do
        not."""

        def run(distinct):
            b = ProgramBuilder()
            base = 0x50_000
            for i in range(4):  # == l1d_mshrs
                off = i * 64 if distinct else 0
                b.load_addr(f"g{i}", base + off, name="gadget ld")
            b.load_addr("victim", 0x90_000, name="victim ld")
            core = build_core(b.build(), mshrs=4)
            core.run()
            return retired(core, "victim ld")[0].events["dcache"]

        distinct_start = run(distinct=True)
        coalesced_start = run(distinct=False)
        assert distinct_start > coalesced_start + 100

    def test_mshr_released_on_completion(self):
        b = ProgramBuilder()
        for i in range(8):
            b.load_addr(f"r{i}", 0x60_000 + i * 64, name="ld")
        core = build_core(b.build(), mshrs=2)
        core.run()
        assert len(core.hierarchy.l1d_mshrs[0]) == 0
        assert core.hierarchy.l1d_mshrs[0].peak_occupancy == 2


class TestFrontendBackpressure:
    def test_rs_full_throttles_fetch(self):
        """The GIRS primitive (Fig. 5): a miss-dependent chain fills the
        RS, dispatch stalls, the fetch queue fills, and fetch stops."""
        config = CoreConfig(rs_size=8, fetch_queue_size=4)
        b = ProgramBuilder()
        b.load_addr("x", 0x70_000, name="miss ld")  # DRAM miss
        for i in range(30):
            b.add("x", "x", "x", name="dep add")
        b.imm("marker", 1, name="marker")
        core = build_core(b.build(), config=config, warm_icache=True)
        core.run()
        assert core.stats.rs_full_stalls > 0
        marker = retired(core, "marker")[0]
        miss = retired(core, "miss ld")[0]
        # marker could not even be fetched until the miss returned
        assert marker.events["fetch"] >= miss.events["complete"] - 5

    def test_no_throttle_when_chain_independent(self):
        config = CoreConfig(rs_size=8, fetch_queue_size=4)
        b = ProgramBuilder()
        b.load_addr("x", 0x70_000, name="miss ld")
        for i in range(30):
            b.imm(f"y{i}", i, name="indep imm")
        b.imm("marker", 1, name="marker")
        core = build_core(b.build(), config=config, warm_icache=True)
        core.run()
        marker = retired(core, "marker")[0]
        miss = retired(core, "miss ld")[0]
        assert marker.events["fetch"] < miss.events["complete"]


class TestICacheCoupling:
    def test_cold_fetch_stalls(self):
        b = ProgramBuilder()
        b.imm("r1", 1)
        core = build_core(b.build())
        core.run()
        assert core.stats.icache_miss_stalls >= 1

    def test_warm_fetch_does_not_stall(self):
        b = ProgramBuilder()
        b.imm("r1", 1)
        prog = b.build()
        hierarchy = CacheHierarchy(1, small_hierarchy_config())
        # warm all program lines
        line_size = 64
        for slot in range(len(prog)):
            addr = prog.address_of_slot(slot)
            hierarchy.l1i[0].fill(addr & ~(line_size - 1))
        core = Core(0, prog, hierarchy, trace=True)
        core.run()
        assert core.stats.icache_miss_stalls == 0
