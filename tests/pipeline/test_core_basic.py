"""Functional correctness of the OoO core against the golden model."""

import pytest

from repro.isa import Interpreter, ProgramBuilder
from repro.memory.hierarchy import CacheHierarchy
from repro.pipeline import Core, CoreConfig, StaticTakenPredictor
from repro.pipeline.dyninstr import Phase

from tests.conftest import small_hierarchy_config


def run_core(program, *, registers=None, predictor=None, trace=False, config=None):
    hierarchy = CacheHierarchy(1, small_hierarchy_config())
    core = Core(
        0,
        program,
        hierarchy,
        config=config or CoreConfig(),
        predictor=predictor,
        registers=registers,
        trace=trace,
    )
    core.run(max_cycles=100_000)
    return core


def assert_matches_interpreter(program, *, registers=None):
    expected = Interpreter(program).run(registers=registers)
    core = run_core(program, registers=registers)
    for reg, value in expected.registers.items():
        assert core.regfile.get(reg) == value, f"register {reg}"
    for addr, value in expected.memory.items():
        assert core.hierarchy.memory.peek(addr) == value, f"mem {addr:#x}"
    return core


class TestStraightLine:
    def test_arithmetic_chain(self):
        b = ProgramBuilder()
        b.imm("r1", 10)
        b.addi("r2", "r1", 5)
        b.add("r3", "r1", "r2")
        assert_matches_interpreter(b.build())

    def test_many_independent_ops(self):
        b = ProgramBuilder()
        for i in range(50):
            b.imm(f"r{i}", i * 3)
        assert_matches_interpreter(b.build())

    def test_long_dependent_chain(self):
        b = ProgramBuilder()
        b.imm("r0", 1)
        for i in range(1, 40):
            b.addi("r0", "r0", 1)
        core = assert_matches_interpreter(b.build())
        assert core.regfile["r0"] == 40

    def test_load_uninitialized_is_zero(self):
        b = ProgramBuilder()
        b.load_addr("r1", 0xBEEF0)
        core = assert_matches_interpreter(b.build())
        assert core.regfile["r1"] == 0

    def test_store_then_load(self):
        b = ProgramBuilder()
        b.imm("addr", 0x2000)
        b.imm("val", 123)
        b.store(["addr"], lambda a: a, "val")
        b.load("out", ["addr"], lambda a: a)
        core = assert_matches_interpreter(b.build())
        assert core.regfile["out"] == 123

    def test_store_load_forwarding_used(self):
        b = ProgramBuilder()
        b.imm("addr", 0x2000)
        b.imm("val", 7)
        b.store(["addr"], lambda a: a, "val")
        b.load("out", ["addr"], lambda a: a)
        core = run_core(b.build())
        assert core.regfile["out"] == 7
        assert core.lsu.stats_forwards >= 1

    def test_initial_registers(self):
        b = ProgramBuilder()
        b.addi("r2", "seed", 1)
        core = run_core(b.build(), registers={"seed": 41})
        assert core.regfile["r2"] == 42


class TestBranches:
    def test_not_taken_correctly_predicted(self):
        b = ProgramBuilder()
        b.imm("r1", 0)
        b.branch_if(["r1"], lambda v: v == 1, "skip")
        b.imm("r2", 5)
        b.label("skip")
        core = assert_matches_interpreter(b.build())
        assert core.stats.mispredicts == 0  # default predictor: not-taken-ish

    def test_taken_branch(self):
        b = ProgramBuilder()
        b.imm("r1", 1)
        b.branch_if(["r1"], lambda v: v == 1, "skip")
        b.imm("r2", 5)
        b.label("skip")
        b.imm("r3", 9)
        core = assert_matches_interpreter(b.build())
        assert "r2" not in core.regfile
        assert core.regfile["r3"] == 9

    def test_mispredict_squashes_wrong_path(self):
        """Static-taken predictor on a not-taken branch must squash."""
        b = ProgramBuilder()
        b.imm("r1", 0)
        b.branch_if(["r1"], lambda v: v == 1, "wrong")
        b.imm("r2", 5)
        b.jump("end")
        b.label("wrong")
        b.imm("r2", 99)
        b.label("end")
        core = run_core(b.build(), predictor=StaticTakenPredictor(True))
        assert core.regfile["r2"] == 5
        assert core.stats.mispredicts >= 1
        assert core.stats.squashes >= 1

    def test_loop(self):
        b = ProgramBuilder()
        b.imm("i", 0)
        b.imm("acc", 0)
        b.label("head")
        b.add("acc", "acc", "i")
        b.addi("i", "i", 1)
        b.branch_if(["i"], lambda v: v < 10, "head")
        core = assert_matches_interpreter(b.build())
        assert core.regfile["acc"] == sum(range(10))

    def test_nested_mispredicts(self):
        b = ProgramBuilder()
        b.imm("r1", 0)
        b.branch_if(["r1"], lambda v: v == 1, "a")
        b.branch_if(["r1"], lambda v: v == 1, "b")
        b.imm("r2", 1)
        b.label("a")
        b.label("b")
        b.addi("r3", "r2", 1)
        assert_matches_interpreter(b.build())

    def test_squash_restores_rename(self):
        """Wrong path writes r2; after squash, r2 must read the old value."""
        b = ProgramBuilder()
        b.imm("r2", 7)
        b.imm("r1", 0)
        b.branch_if(["r1"], lambda v: v == 1, "wrong")
        b.jump("end")
        b.label("wrong")
        b.imm("r2", 99)
        b.addi("r4", "r2", 0)
        b.label("end")
        b.addi("r3", "r2", 1)
        core = run_core(b.build(), predictor=StaticTakenPredictor(True))
        assert core.regfile["r3"] == 8


class TestMemoryDependencies:
    def test_store_value_dependency(self):
        b = ProgramBuilder()
        b.imm("a", 0x3000)
        b.imm("x", 3)
        b.addi("y", "x", 4)
        b.store(["a"], lambda a: a, "y")
        b.load("z", ["a"], lambda a: a)
        core = assert_matches_interpreter(b.build())
        assert core.regfile["z"] == 7

    def test_two_stores_same_addr_forward_youngest(self):
        b = ProgramBuilder()
        b.imm("a", 0x3000)
        b.imm("v1", 1)
        b.imm("v2", 2)
        b.store(["a"], lambda a: a, "v1")
        b.store(["a"], lambda a: a, "v2")
        b.load("out", ["a"], lambda a: a)
        core = assert_matches_interpreter(b.build())
        assert core.regfile["out"] == 2

    def test_loads_to_distinct_addrs(self):
        b = ProgramBuilder()
        for i in range(6):
            b.load_addr(f"r{i}", 0x4000 + i * 64)
        assert_matches_interpreter(b.build())


class TestPipelineInvariants:
    def test_event_ordering(self):
        b = ProgramBuilder()
        b.imm("r1", 1)
        b.addi("r2", "r1", 1)
        b.load_addr("r3", 0x1000)
        b.store_addr(0x2000, "r2")
        core = run_core(b.build(), trace=True)
        for instr in core.trace:
            if instr.phase is not Phase.RETIRED:
                continue
            ev = instr.events
            assert ev["fetch"] <= ev["dispatch"]
            if "issue" in ev:
                assert ev["dispatch"] <= ev["issue"]
                assert ev["issue"] < ev["complete"]
            assert ev["complete"] <= ev["retire"]

    def test_retirement_in_program_order(self):
        b = ProgramBuilder()
        b.load_addr("slow", 0x9000)       # DRAM miss: completes late
        b.imm("fast", 1)                  # completes immediately
        core = run_core(b.build(), trace=True)
        retired = [i for i in core.trace if i.phase is Phase.RETIRED]
        seqs = [i.seq for i in retired]
        assert seqs == sorted(seqs)

    def test_out_of_order_completion(self):
        b = ProgramBuilder()
        b.load_addr("slow", 0x9000)
        b.imm("fast", 1)
        core = run_core(b.build(), trace=True)
        by_name = {i.name: i for i in core.trace}
        slow = next(i for i in core.trace if i.is_load)
        fast = by_name["imm 0x1"]
        assert fast.events["complete"] < slow.events["complete"]
        assert fast.events["retire"] >= slow.events["retire"] or (
            fast.events["retire"] > fast.events["complete"]
        )

    def test_ipc_reported(self):
        b = ProgramBuilder()
        for i in range(20):
            b.imm(f"r{i}", i)
        core = run_core(b.build())
        assert 0 < core.stats.ipc <= core.config.dispatch_width

    def test_fence_serializes(self):
        b = ProgramBuilder()
        b.imm("r1", 1)
        b.fence()
        b.addi("r2", "r1", 1)
        core = run_core(b.build(), trace=True)
        assert core.regfile["r2"] == 2
