"""Memory-disambiguation behaviour around stores."""

import pytest

from repro.isa import ProgramBuilder
from repro.memory.hierarchy import CacheHierarchy
from repro.pipeline import Core
from repro.pipeline.dyninstr import Phase

from tests.conftest import small_hierarchy_config


def run(program):
    hierarchy = CacheHierarchy(1, small_hierarchy_config())
    for slot in range(len(program)):
        hierarchy.l1i[0].fill(program.address_of_slot(slot) & ~63)
    core = Core(0, program, hierarchy, trace=True)
    core.run(max_cycles=100_000)
    return core


class TestStoreAddressResolution:
    def test_register_free_store_address_resolved_at_dispatch(self):
        """A constant-address store must not block younger independent
        loads on disambiguation, even while its data is still brewing."""
        b = ProgramBuilder()
        b.alu("v", [], lambda: 9, latency=40, port=5, name="slow data")
        b.store((), lambda: 0x2000, "v", name="const-addr store")
        b.load_addr("x", 0x3000, name="independent load")
        core = run(b.build())
        load = next(i for i in core.trace if i.name == "independent load")
        store = next(i for i in core.trace if i.name == "const-addr store")
        # the load's memory access started long before the store's data
        assert load.events["dcache"] < store.events["complete"]
        assert core.hierarchy.memory.peek(0x2000) == 9
        assert core.regfile["x"] == 0

    def test_register_dependent_store_still_blocks(self):
        """An unresolved (register-based) store address conservatively
        stalls younger loads — the correctness guarantee."""
        b = ProgramBuilder()
        b.alu("a", [], lambda: 0x3000, latency=40, port=5, name="slow addr")
        b.imm("v", 7)
        b.store(["a"], lambda addr: addr, "v", name="reg-addr store")
        b.load_addr("x", 0x3000, name="aliasing load")
        core = run(b.build())
        assert core.regfile["x"] == 7  # forwarded, not stale memory

    def test_forwarding_from_const_addr_store(self):
        b = ProgramBuilder()
        b.alu("v", [], lambda: 5, latency=20, port=5, name="data")
        b.store((), lambda: 0x2000, "v", name="store")
        b.load_addr("x", 0x2000, name="match load")
        core = run(b.build())
        assert core.regfile["x"] == 5
        assert core.lsu.stats_forwards >= 1
