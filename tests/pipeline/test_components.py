"""Direct unit tests for ROB, branch predictors, reservation station,
and the CDB — the pieces the attack-enabling behaviours live in."""

import pytest

from repro.isa import instructions as ins
from repro.pipeline.branch import OraclePredictor, StaticTakenPredictor, TwoBitPredictor
from repro.pipeline.config import PortConfig
from repro.pipeline.dyninstr import DynInstr, Phase
from repro.pipeline.execution_unit import CommonDataBus
from repro.pipeline.reservation_station import ReservationStation
from repro.pipeline.rob import ROB


def dyn(seq, inst=None, **kw):
    d = DynInstr(seq=seq, slot=0, static=inst or ins.nop(), pc_addr=0x400000)
    for key, value in kw.items():
        setattr(d, key, value)
    return d


class TestROB:
    def test_fifo_behaviour(self):
        rob = ROB(4)
        rob.push(dyn(1))
        rob.push(dyn(2))
        assert rob.head().seq == 1
        assert rob.pop_head().seq == 1
        assert rob.head().seq == 2

    def test_squash_returns_in_order_and_marks(self):
        rob = ROB(8)
        for seq in (1, 2, 3, 4):
            rob.push(dyn(seq))
        squashed = rob.squash_younger_than(2)
        assert [i.seq for i in squashed] == [3, 4]
        assert all(i.phase is Phase.SQUASHED for i in squashed)
        assert len(rob) == 2

    def test_oldest_unresolved_branch_skips_unconditional(self):
        rob = ROB(8)
        rob.push(dyn(1))
        jump = ins.branch((), lambda: True, "x", unconditional=True)
        # fake label resolution not needed for this unit test
        rob.push(DynInstr(seq=2, slot=0, static=jump, pc_addr=0))
        assert rob.oldest_unresolved_branch() is None
        cond = ins.branch(("r",), lambda v: v, "x")
        rob.push(DynInstr(seq=3, slot=0, static=cond, pc_addr=0))
        assert rob.oldest_unresolved_branch().seq == 3

    def test_safety_flags_prefix_semantics(self):
        rob = ROB(8)
        load = dyn(1, ins.load("a", (), lambda: 0))
        rob.push(load)
        branch = dyn(2, ins.branch(("a",), lambda v: v, "x"))
        rob.push(branch)
        younger = dyn(3, ins.load("b", (), lambda: 64))
        rob.push(younger)
        flags = rob.safety_flags()
        assert flags[1].older_branches_resolved       # nothing older
        assert flags[1].is_oldest
        assert flags[2].older_branches_resolved        # load is not a branch
        assert not flags[2].older_loads_completed      # load 1 incomplete
        assert not flags[3].older_branches_resolved    # branch 2 unresolved
        assert flags[3].older_stores_addr_resolved     # no stores at all

    def test_safety_flags_store_address(self):
        rob = ROB(8)
        store = dyn(1, ins.store(("a",), lambda v: v, "b"))
        rob.push(store)
        load = dyn(2, ins.load("c", (), lambda: 0))
        rob.push(load)
        flags = rob.safety_flags()
        assert not flags[2].older_stores_addr_resolved
        store.addr = 0x100
        flags = rob.safety_flags()
        assert flags[2].older_stores_addr_resolved

    def test_older_stores(self):
        rob = ROB(8)
        s1 = dyn(1, ins.store(("a",), lambda v: v, "b"))
        rob.push(s1)
        rob.push(dyn(2))
        s2 = dyn(3, ins.store(("a",), lambda v: v, "b"))
        rob.push(s2)
        assert [s.seq for s in rob.older_stores(3)] == [1]
        assert [s.seq for s in rob.older_stores(9)] == [1, 3]


class TestPredictors:
    def test_two_bit_hysteresis(self):
        p = TwoBitPredictor()
        assert not p.predict(0)        # weak not-taken initially
        p.update(0, True)
        assert p.predict(0)            # weak taken
        p.update(0, False)
        assert not p.predict(0)

    def test_strong_state_survives_one_flip(self):
        p = TwoBitPredictor()
        p.train(0, True, times=3)      # strong taken
        p.update(0, False)
        assert p.predict(0)            # still predicts taken

    def test_per_pc_isolation(self):
        p = TwoBitPredictor()
        p.train(5, True, times=3)
        assert p.predict(5)
        assert not p.predict(6)

    def test_reset(self):
        p = TwoBitPredictor()
        p.train(0, True, times=3)
        p.reset()
        assert not p.predict(0)

    def test_initial_state_validation(self):
        with pytest.raises(ValueError):
            TwoBitPredictor(initial=5)

    def test_oracle_replays_and_flags_exhaustion(self):
        p = OraclePredictor([True, False])
        assert p.predict(0) is True
        assert p.predict(9) is False
        assert not p.exhausted
        assert p.predict(0) is False
        assert p.exhausted
        p.reset()
        assert p.predict(0) is True

    def test_static_never_learns(self):
        p = StaticTakenPredictor(True)
        p.update(0, False)
        assert p.predict(0)


class TestReservationStationHolding:
    def test_hold_slot_keeps_occupancy(self):
        rs = ReservationStation(4)
        instr = dyn(1, ins.imm("r", 0))
        rs.insert(instr)
        rs.remove_on_issue(instr, hold_slot=True)
        assert rs.occupied_micro_ops == 1  # §5.4 rule 1
        rs.release_held(1)
        assert rs.occupied_micro_ops == 0

    def test_normal_issue_frees_immediately(self):
        rs = ReservationStation(4)
        instr = dyn(1, ins.imm("r", 0))
        rs.insert(instr)
        rs.remove_on_issue(instr, hold_slot=False)
        assert rs.occupied_micro_ops == 0

    def test_squash_releases_held_slots(self):
        rs = ReservationStation(4)
        older = dyn(1, ins.imm("r", 0))
        younger = dyn(5, ins.imm("r", 0))
        for i in (older, younger):
            rs.insert(i)
        rs.remove_on_issue(younger, hold_slot=True)
        rs.squash_younger_than(1)
        assert rs.occupied_micro_ops == 1  # only the older remains

    def test_micro_op_weights(self):
        rs = ReservationStation(3)
        fat = dyn(1, ins.alu("r", [], lambda: 0, micro_ops=3))
        rs.insert(fat)
        assert not rs.can_accept(dyn(2, ins.imm("r", 0)))

    def test_peak_occupancy_tracked(self):
        rs = ReservationStation(4)
        rs.insert(dyn(1, ins.imm("r", 0)))
        rs.insert(dyn(2, ins.imm("r", 0)))
        assert rs.peak_occupancy == 2


class TestCDB:
    def test_oldest_first_broadcast(self):
        cdb = CommonDataBus(1)
        cdb.enqueue(dyn(5))
        cdb.enqueue(dyn(2))
        assert [i.seq for i in cdb.broadcast()] == [2]
        assert [i.seq for i in cdb.broadcast()] == [5]

    def test_width_respected(self):
        cdb = CommonDataBus(2)
        for seq in (1, 2, 3):
            cdb.enqueue(dyn(seq))
        assert len(cdb.broadcast()) == 2
        assert cdb.stall_cycles == 1

    def test_squash_filters_queue(self):
        cdb = CommonDataBus(2)
        for seq in (1, 5, 9):
            cdb.enqueue(dyn(seq))
        victims = cdb.squash_younger_than(5)
        assert [v.seq for v in victims] == [9]
        assert len(cdb) == 2
