"""Figure 1's CDB interference vector, and why arbitration matters.

Under fixed port-priority bus grants, a stream of younger results from
a high-priority port starves an older instruction's writeback —
interference through the common data bus.  Age-ordered arbitration (the
default, which is §5.4 rule 2 applied to the bus) eliminates it.
"""

import pytest

from repro.isa import ProgramBuilder
from repro.memory.hierarchy import CacheHierarchy
from repro.pipeline import Core, CoreConfig
from repro.pipeline.dyninstr import Phase

from tests.conftest import small_hierarchy_config


def cdb_victim():
    """An older op on port 5 contending with a younger result stream
    from port 0 (pipelined single-cycle ops saturating a width-1 CDB)."""
    b = ProgramBuilder()
    b.alu("z", [], lambda: 7, latency=10, port=1, name="z")
    b.alu("target", ["z"], lambda v: v + 1, latency=1, port=5, name="target op")
    # younger saturating stream: one completion per cycle on port 0
    for i in range(40):
        b.alu(f"n{i}", [], lambda i=i: i, latency=1, port=0, name="stream")
    b.halt()
    return b.build()


def run(arbitration):
    ports = CoreConfig().ports
    # make port 0 pipelined for this test so the stream saturates
    from repro.pipeline.config import PortConfig

    ports = (PortConfig("p0", pipelined=True),) + ports[1:]
    config = CoreConfig(cdb_width=1, cdb_arbitration=arbitration, ports=ports)
    program = cdb_victim()
    hierarchy = CacheHierarchy(1, small_hierarchy_config())
    for slot in range(len(program)):
        hierarchy.l1i[0].fill(program.address_of_slot(slot) & ~63)
    core = Core(0, program, hierarchy, config=config, trace=True)
    core.run(max_cycles=100_000)
    z = next(i for i in core.trace if i.name == "z")
    target = next(i for i in core.trace if i.name == "target op")
    # the f(z)->target path time: captures z's writeback starvation
    # rippling into the dependent op (the Fig. 1 interference shape)
    return target.events["complete"] - z.events["issue"]


class TestCDBInterference:
    def test_port_priority_starves_older_op(self):
        delay_port = run("port")
        # z's broadcast is starved behind ~40 younger stream results
        assert delay_port > 30

    def test_age_arbitration_immune(self):
        delay_age = run("age")
        assert delay_age <= 16  # z latency 10 + bounded pipeline slack

    def test_policies_differ(self):
        assert run("port") > run("age") + 20

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            CoreConfig(cdb_arbitration="coinflip")
