"""Robustness / failure-injection tests for the pipeline substrate."""

import pytest

from repro.isa import ProgramBuilder
from repro.isa.instructions import OpClass
from repro.memory.hierarchy import CacheHierarchy
from repro.pipeline import Core, CoreConfig, StaticTakenPredictor
from repro.pipeline.config import PortConfig
from repro.pipeline.core import DeadlockError
from repro.pipeline.execution_unit import CommonDataBus, ExecutionUnit
from repro.pipeline.reservation_station import ReservationStation
from repro.pipeline.rob import ROB
from repro.pipeline.dyninstr import DynInstr, Phase
from repro.isa import instructions as ins

from tests.conftest import small_hierarchy_config


def dyn(seq, inst=None):
    inst = inst or ins.nop()
    return DynInstr(seq=seq, slot=0, static=inst, pc_addr=0x400000)


class TestConfigValidation:
    def test_core_config_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            CoreConfig(fetch_width=0)
        with pytest.raises(ValueError):
            CoreConfig(rob_size=0)
        with pytest.raises(ValueError):
            CoreConfig(cdb_width=0)

    def test_port_needs_name(self):
        with pytest.raises(ValueError):
            PortConfig("")

    def test_empty_ports_rejected(self):
        with pytest.raises(ValueError):
            CoreConfig(ports=())


class TestStructuralLimits:
    def test_rob_overflow_raises(self):
        rob = ROB(2)
        rob.push(dyn(1))
        rob.push(dyn(2))
        with pytest.raises(RuntimeError, match="overflow"):
            rob.push(dyn(3))

    def test_rob_requires_program_order(self):
        rob = ROB(4)
        rob.push(dyn(5))
        with pytest.raises(RuntimeError, match="program order"):
            rob.push(dyn(3))

    def test_rs_overflow_raises(self):
        rs = ReservationStation(1)
        rs.insert(dyn(1, ins.imm("r1", 0)))
        with pytest.raises(RuntimeError, match="overflow"):
            rs.insert(dyn(2, ins.imm("r2", 0)))

    def test_nonpipelined_eu_rejects_double_issue(self):
        eu = ExecutionUnit(0, PortConfig("np", pipelined=False))
        eu.issue(dyn(1, ins.imm("r", 0)), cycle=1, latency=5)
        assert not eu.can_accept(2)
        with pytest.raises(RuntimeError):
            eu.issue(dyn(2, ins.imm("r", 0)), cycle=2, latency=5)

    def test_pipelined_eu_one_issue_per_cycle(self):
        eu = ExecutionUnit(1, PortConfig("p", pipelined=True))
        eu.issue(dyn(1, ins.imm("r", 0)), cycle=1, latency=5)
        assert not eu.can_accept(1)
        assert eu.can_accept(2)

    def test_cdb_width_positive(self):
        with pytest.raises(ValueError):
            CommonDataBus(0)


class TestDeadlockDetection:
    def test_monotonic_cycles_enforced(self):
        core = Core(
            0,
            ProgramBuilder().build(),
            CacheHierarchy(1, small_hierarchy_config()),
        )
        core.step(1)
        with pytest.raises(ValueError, match="monotonically"):
            core.step(1)

    def test_run_cycle_budget(self):
        b = ProgramBuilder()
        b.label("spin")
        b.jump("spin")
        core = Core(
            0, b.build(), CacheHierarchy(1, small_hierarchy_config())
        )
        with pytest.raises(DeadlockError):
            core.run(max_cycles=2_000)

    def test_progress_watchdog_fires(self):
        """A load that can never complete trips the watchdog rather than
        hanging forever."""
        b = ProgramBuilder()
        b.load_addr("x", 0x9000, name="ld")
        core = Core(0, b.build(), CacheHierarchy(1, small_hierarchy_config()))
        core.deadlock_window = 500

        # sabotage: swallow LSU completions so the load never finishes
        core.lsu.collect_completions = lambda cycle: []
        with pytest.raises(DeadlockError, match="no retirement"):
            core.run(max_cycles=1_000_000)


class TestSquashStorms:
    def test_repeated_mispredicts_recover(self):
        """A loop whose branch mispredicts every iteration (alternating
        outcome) must still compute the right value."""
        b = ProgramBuilder()
        b.imm("i", 0)
        b.imm("acc", 0)
        b.label("head")
        b.addi("i", "i", 1)
        b.branch_if(["i"], lambda v: v % 2 == 0, "even", name="alt")
        b.addi("acc", "acc", 1)  # odd path
        b.jump("next")
        b.label("even")
        b.addi("acc", "acc", 100)
        b.label("next")
        b.branch_if(["i"], lambda v: v < 10, "head")
        core = Core(
            0,
            b.build(),
            CacheHierarchy(1, small_hierarchy_config()),
        )
        core.run()
        assert core.regfile["acc"] == 5 * 1 + 5 * 100
        assert core.stats.mispredicts >= 4

    def test_mispredict_inside_shadow_of_mispredict(self):
        """Nested wrong-path branches: the older squash must win."""
        b = ProgramBuilder()
        b.load_addr("n", 0x48_080, name="slow")
        b.branch_if(["n"], lambda v: v > 10, "wrong1", name="outer")
        b.imm("ok", 1)
        b.jump("end")
        b.label("wrong1")
        b.branch_if(["n"], lambda v: v > 20, "wrong2", name="inner")
        b.imm("bad1", 1)
        b.label("wrong2")
        b.imm("bad2", 1)
        b.label("end")
        core = Core(
            0,
            b.build(),
            CacheHierarchy(1, small_hierarchy_config()),
            predictor=StaticTakenPredictor(True),
        )
        core.run()
        assert core.regfile.get("ok") == 1
        assert "bad1" not in core.regfile
        assert "bad2" not in core.regfile

    def test_halt_on_wrong_path_does_not_stop_machine(self):
        b = ProgramBuilder()
        b.load_addr("n", 0x48_080, name="slow")
        b.branch_if(["n"], lambda v: v > 10, "trap", name="br")
        b.imm("survived", 1)
        b.jump("end")
        b.label("trap")
        b.halt()  # speculatively fetched, must be squashed
        b.label("end")
        core = Core(
            0,
            b.build(),
            CacheHierarchy(1, small_hierarchy_config()),
            predictor=StaticTakenPredictor(True),
        )
        core.run()
        assert core.regfile.get("survived") == 1
