"""Property-based differential testing: pipeline vs. golden model.

For any generated program, the out-of-order core (with arbitrary branch
prediction, squashes, forwarding, reordering) must produce exactly the
architectural state of the in-order interpreter.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import Interpreter
from repro.memory.hierarchy import CacheHierarchy
from repro.pipeline import Core, CoreConfig, StaticTakenPredictor, TwoBitPredictor
from repro.workloads import RandomProgramConfig, random_program

from tests.conftest import small_hierarchy_config


def run_and_compare(seed, predictor=None, config=None):
    program = random_program(seed, config)
    expected = Interpreter(program, max_instructions=100_000).run()
    hierarchy = CacheHierarchy(1, small_hierarchy_config())
    core = Core(
        0,
        program,
        hierarchy,
        config=CoreConfig(),
        predictor=predictor or TwoBitPredictor(),
    )
    core.run(max_cycles=200_000)
    assert core.halted
    for reg, value in expected.registers.items():
        assert core.regfile.get(reg, 0) == value, f"reg {reg} (seed {seed})"
    for addr, value in expected.memory.items():
        assert core.hierarchy.memory.peek(addr) == value, (
            f"mem {addr:#x} (seed {seed})"
        )
    return core


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_random_programs_match_interpreter(seed):
    run_and_compare(seed)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_random_programs_under_mistrained_prediction(seed):
    """Static-taken predictor maximizes mispredicts; architectural state
    must survive arbitrary squashing."""
    run_and_compare(seed, predictor=StaticTakenPredictor(True))


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_random_programs_with_tiny_structures(seed):
    """Structural stalls (tiny ROB/RS/FQ) must not change results."""
    config = CoreConfig(
        rob_size=8,
        rs_size=6,
        fetch_queue_size=4,
        lsu_size=4,
        fetch_width=2,
        dispatch_width=2,
        retire_width=2,
        cdb_width=1,
    )
    program = random_program(seed)
    expected = Interpreter(program, max_instructions=100_000).run()
    hierarchy = CacheHierarchy(1, small_hierarchy_config())
    core = Core(0, program, hierarchy, config=config)
    core.run(max_cycles=400_000)
    for reg, value in expected.registers.items():
        assert core.regfile.get(reg, 0) == value


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=5_000),
    branch_prob=st.sampled_from([0.0, 0.3]),
    store_prob=st.sampled_from([0.0, 0.3]),
)
def test_random_programs_mix_extremes(seed, branch_prob, store_prob):
    config = RandomProgramConfig(
        length=30, branch_probability=branch_prob, store_probability=store_prob
    )
    run_and_compare_with_config(seed, config)


def run_and_compare_with_config(seed, gen_config):
    program = random_program(seed, gen_config)
    expected = Interpreter(program, max_instructions=100_000).run()
    hierarchy = CacheHierarchy(1, small_hierarchy_config())
    core = Core(0, program, hierarchy)
    core.run(max_cycles=200_000)
    for reg, value in expected.registers.items():
        assert core.regfile.get(reg, 0) == value
    for addr, value in expected.memory.items():
        assert core.hierarchy.memory.peek(addr) == value
