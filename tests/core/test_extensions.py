"""Tests for the paper's extension/future-work attack variants:

* data-dependent arithmetic transmitter (§3.2.2 generalization);
* Prime+Probe receiver for the I-cache PoC (§4.1 note);
* the §6 W+1 occupancy sender vs CleanupSpec with randomized LLC
  replacement.
"""

import pytest

from repro.core.attack import (
    ATTACK_HIERARCHY_RANDOM_LLC,
    DCacheAttack,
    ICacheAttack,
    OccupancyAttack,
)
from repro.core.harness import run_victim_trial
from repro.core.victims import gdnpeu_arith_victim, gdnpeu_occupancy_victim


class TestArithmeticTransmitter:
    @pytest.mark.parametrize(
        "scheme", ["dom-nontso", "invisispec-spectre", "safespec-wfb"]
    )
    def test_reorders_without_any_secret_load(self, scheme):
        """The transmitter is pure ALU work: loads never carry the
        secret, yet the A/B order still flips (inverted polarity)."""
        spec = gdnpeu_arith_victim()
        orders = [
            run_victim_trial(spec, scheme, s).order(spec.line_a, spec.line_b)
            for s in (0, 1)
        ]
        assert orders == ["yx", "xy"]

    def test_fence_blocks_it(self):
        spec = gdnpeu_arith_victim()
        orders = [
            run_victim_trial(spec, "fence-spectre", s).order(
                spec.line_a, spec.line_b
            )
            for s in (0, 1)
        ]
        assert orders[0] == orders[1]

    def test_dynamic_latency_observable(self):
        """The transmitter's execution time really is operand-dependent."""
        spec = gdnpeu_arith_victim()
        durations = {}
        for secret in (0, 1):
            result = run_victim_trial(spec, "dom-nontso", secret, trace=True)
            tx = [i for i in result.core.trace if i.name == "arith transmitter"]
            assert tx, "transmitter executed speculatively"
            durations[secret] = (
                tx[0].events.get("complete", 10**9) - tx[0].events["issue"]
            )
        # slow case never completes before the squash or takes far longer
        assert durations[0] < 10


class TestPrimeProbeICache:
    def test_decodes_bits(self):
        attack = ICacheAttack("invisispec-spectre", receiver="primeprobe")
        for bit in (0, 1, 1, 0):
            assert attack.send_bit(bit).correct

    def test_blocked_for_protected_icache(self):
        attack = ICacheAttack("safespec-wfb", receiver="primeprobe")
        assert attack.send_bit(0).received == attack.send_bit(1).received

    def test_invalid_receiver_rejected(self):
        with pytest.raises(ValueError):
            ICacheAttack("dom-nontso", receiver="telepathy")


class TestOccupancySenderVsCleanupSpec:
    def test_qlru_receiver_defeated_by_randomized_llc(self):
        """Randomized LLC replacement (the CleanupSpec countermeasure)
        kills the replacement-state receiver: decode is secret-blind."""
        outputs = set()
        for bit in (0, 1, 0, 1):
            attack = DCacheAttack(
                "cleanupspec", hierarchy_config=ATTACK_HIERARCHY_RANDOM_LLC
            )
            outputs.add(attack.send_bit(bit).received)
        assert len(outputs) == 1

    def test_occupancy_attack_succeeds(self):
        attack = OccupancyAttack("cleanupspec", trials_per_bit=48)
        for bit in (0, 1, 0, 1):
            assert attack.send_bit(bit).correct

    def test_occupancy_attack_is_far_more_expensive(self):
        """'Makes exploitation more challenging' (§6), quantified."""
        cheap = DCacheAttack("dom-nontso").send_bit(1).cycles
        costly = OccupancyAttack("cleanupspec", trials_per_bit=48).send_bit(1).cycles
        # 48 victim invocations instead of 1; >2x in raw cycles even
        # with our idealized receiver timing
        assert costly > 2 * cheap

    def test_occupancy_statistics(self):
        """A-last (secret=1) is never evicted; A-first sometimes is."""
        attack = OccupancyAttack("cleanupspec", trials_per_bit=1)
        evictions = {0: 0, 1: 0}
        for secret in (0, 1):
            for t in range(48):
                resident, _ = attack._observe_once(secret, trial_seed=t)
                if not resident:
                    evictions[secret] += 1
        assert evictions[1] == 0
        assert evictions[0] >= 1

    def test_victim_spec_shape(self):
        spec = gdnpeu_occupancy_victim(num_fillers=16)
        # W+1 accesses to one set: A + 16 fillers, all congruent
        from repro.memory.address import AddressLayout

        layout = AddressLayout(line_size=64, num_sets=64, num_slices=1)
        congruent_flush = [
            line
            for line in spec.flush_lines
            if layout.same_set(line, spec.line_a)
        ]
        assert len(congruent_flush) >= 17  # A + 16 fillers
