"""Coverage for assorted public-API corners of the attack kit."""

import pytest

from repro.core.harness import TrialResult, run_victim_trial
from repro.core.matrix import MatrixCell, evaluate_cell
from repro.core.victims import ADDR_REF, VictimSpec, gdnpeu_victim, girs_victim


class TestMatrixEdges:
    def test_girs_data_orderings_are_na(self):
        """GIRS only influences instruction fetches (§3.2.2): the data
        orderings are structurally not applicable."""
        for ordering in ("vd-vd", "vd-ad"):
            cell = evaluate_cell("girs", ordering, "dom-nontso")
            assert not cell.vulnerable
            assert cell.detail == "n/a"

    def test_unknown_gadget_rejected(self):
        with pytest.raises(ValueError):
            evaluate_cell("gportsmash", "vd-vd", "dom-nontso")

    def test_cell_key(self):
        cell = MatrixCell("gdnpeu", "vd-vd", "unsafe", True, 1, 2)
        assert cell.key == ("gdnpeu", "vd-vd", "unsafe")


class TestHarnessExtras:
    def test_extra_lines_monitored(self):
        spec = gdnpeu_victim()
        chase_line = 0x100_000 + 28 * 64  # ADDR_CHASE0's line
        result = run_victim_trial(spec, "unsafe", 0, extra_lines=[chase_line])
        assert result.first_access(chase_line) is not None

    def test_trace_flag_populates_core_trace(self):
        spec = gdnpeu_victim()
        traced = run_victim_trial(spec, "unsafe", 0, trace=True)
        untraced = run_victim_trial(spec, "unsafe", 0)
        assert traced.core.trace
        assert not untraced.core.trace

    def test_scheme_object_accepted(self):
        from repro.schemes import DelayOnMiss

        spec = gdnpeu_victim()
        result = run_victim_trial(spec, DelayOnMiss("nontso"), 1)
        assert result.scheme == "dom-nontso"

    def test_visible_window_excludes_setup(self):
        """Prime/flush setup must not appear in the trial's log window."""
        spec = gdnpeu_victim()
        result = run_victim_trial(spec, "unsafe", 0)
        assert all(e.cycle >= 0 for e in result.visible)
        # no access can predate the victim's first possible fetch
        lines = {e.line for e in result.visible}
        assert spec.line_a in lines


class TestVictimSpecAPI:
    def test_monitored_lines_listing(self):
        spec = gdnpeu_victim()
        assert spec.monitored_lines() == [spec.line_a, spec.line_b]
        girs = girs_victim()
        assert girs.monitored_lines() == [girs.target_iline]

    def test_target_iline_none_without_label(self):
        spec = gdnpeu_victim()
        assert spec.target_iline is None

    def test_program_listing_renders(self):
        text = gdnpeu_victim().program.listing()
        assert "body:" in text
        assert "load A" in text
