"""Table 1 reproduction tests: the vulnerability matrix must match the
paper's published pattern cell for cell."""

import pytest

from repro.core.matrix import evaluate_cell, format_matrix, run_matrix

# The paper's Table 1, translated to our scheme names.  The VD-VD/VI
# column is tested via VD-VD; the VI orderings via VI-AD.
EXPECTED_VULNERABLE = {
    ("gdnpeu", "vd-vd"): {"invisispec-spectre", "dom-nontso", "safespec-wfb"},
    ("gdnpeu", "vd-ad"): {
        "invisispec-spectre",
        "invisispec-futuristic",
        "dom-nontso",
        "dom-tso",
        "safespec-wfb",
        "safespec-wfc",
        "muontrap",
        "condspec",
    },
    ("gdnpeu", "vi-ad"): {
        "invisispec-spectre",
        "invisispec-futuristic",
        "dom-nontso",
        "dom-tso",
        "safespec-wfb",
        "safespec-wfc",
        "muontrap",
        "condspec",
    },
    ("gdmshr", "vd-vd"): {"invisispec-spectre", "safespec-wfb"},
    ("gdmshr", "vd-ad"): {
        "invisispec-spectre",
        "invisispec-futuristic",
        "safespec-wfb",
        "safespec-wfc",
        "muontrap",
    },
    ("gdmshr", "vi-ad"): {
        "invisispec-spectre",
        "invisispec-futuristic",
        "safespec-wfb",
        "safespec-wfc",
        "muontrap",
    },
    ("girs", "vd-vd"): set(),
    ("girs", "vd-ad"): set(),
    ("girs", "vi-ad"): {"invisispec-spectre", "invisispec-futuristic",
                        "dom-nontso", "dom-tso"},
}

ATTACK_SCHEMES = sorted(
    {s for schemes in EXPECTED_VULNERABLE.values() for s in schemes}
)


def cell_ids():
    for (gadget, ordering), expected in sorted(EXPECTED_VULNERABLE.items()):
        for scheme in ATTACK_SCHEMES:
            yield gadget, ordering, scheme, scheme in expected


@pytest.mark.parametrize(
    "gadget,ordering,scheme,expected",
    list(cell_ids()),
    ids=lambda v: str(v),
)
def test_matrix_cell_matches_table1(gadget, ordering, scheme, expected):
    cell = evaluate_cell(gadget, ordering, scheme)
    assert cell.vulnerable == expected, cell.detail


@pytest.mark.parametrize("scheme", ["fence-spectre", "fence-futuristic"])
@pytest.mark.parametrize("gadget", ["gdnpeu", "gdmshr", "girs"])
@pytest.mark.parametrize("ordering", ["vd-vd", "vd-ad", "vi-ad"])
def test_fence_defense_invulnerable_everywhere(scheme, gadget, ordering):
    cell = evaluate_cell(gadget, ordering, scheme)
    assert not cell.vulnerable, cell.detail


def test_priority_defense_blocks_gdnpeu_orderings():
    """The §5.4 advanced defense removes the EU-contention channel."""
    for ordering in ("vd-vd", "vd-ad"):
        cell = evaluate_cell("gdnpeu", ordering, "priority")
        assert not cell.vulnerable, cell.detail


def test_format_matrix_renders():
    cells = [
        evaluate_cell("gdnpeu", "vd-vd", "dom-nontso"),
        evaluate_cell("gdnpeu", "vd-vd", "dom-tso"),
    ]
    text = format_matrix(cells)
    assert "gdnpeu" in text
    assert "dom-nontso" in text
    assert "dom-tso" not in text.split("|")[1]  # invulnerable not listed
