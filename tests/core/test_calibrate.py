"""Tests for the attacker calibration toolkit."""

import pytest

from repro.core.calibrate import (
    CalibrationResult,
    find_reference_cycle,
    secret_dependent_order,
    sweep_parameter,
    tune_gdnpeu_reference_chain,
)
from repro.core.harness import run_victim_trial
from repro.core.victims import ADDR_REF, gdnpeu_victim


class TestReferenceCalibration:
    def test_finds_midpoint_for_vulnerable_scheme(self):
        spec = gdnpeu_victim()
        ref = find_reference_cycle(spec, "muontrap")
        assert ref is not None
        t0 = run_victim_trial(spec, "muontrap", 0).first_access(spec.line_a)
        t1 = run_victim_trial(spec, "muontrap", 1).first_access(spec.line_a)
        assert min(t0, t1) < ref < max(t0, t1)

    def test_returns_none_for_fence(self):
        assert find_reference_cycle(gdnpeu_victim(), "fence-spectre") is None

    def test_calibrated_reference_completes_attack(self):
        """Full VD-AD cycle: calibrate, then verify the order flips
        against the live reference access."""
        spec = gdnpeu_victim()
        ref = find_reference_cycle(spec, "condspec")
        orders = []
        for secret in (0, 1):
            trial = run_victim_trial(
                spec, "condspec", secret, reference_accesses=[(ADDR_REF, ref)]
            )
            orders.append(trial.order(spec.line_a, ADDR_REF))
        assert orders[0] != orders[1]


class TestParameterSweep:
    def test_default_parameters_already_work(self):
        assert secret_dependent_order(gdnpeu_victim(), "dom-nontso")

    def test_detuned_gadget_fails_and_sweep_recovers(self):
        """With g too short, B issues before A either way: no channel.
        The sweep finds a working chain length, like a real attacker
        tuning against unknown hardware."""
        detuned = gdnpeu_victim(g_len=3)
        assert not secret_dependent_order(detuned, "dom-nontso")
        result = tune_gdnpeu_reference_chain(
            "dom-nontso", g_len_candidates=(3, 4, 12, 16)
        )
        assert result.ok
        assert result.value not in (3, 4)
        assert result.spec is not None
        assert secret_dependent_order(result.spec, "dom-nontso")

    def test_sweep_reports_failures(self):
        result = sweep_parameter(
            gdnpeu_victim, "g_len", (3, 4), "fence-spectre"
        )
        assert not result.ok
        assert result.value is None
        assert [v for v, _ in result.tried] == [3, 4]
        assert "FAILED" in result.describe()

    def test_describe_mentions_parameter(self):
        result = tune_gdnpeu_reference_chain(
            "dom-nontso", g_len_candidates=(12,)
        )
        assert "g_len=12" in result.describe()
        assert "calibrated" in result.describe()
