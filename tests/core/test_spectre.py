"""Spectre v1 baseline: leaks on unsafe, blocked by every invisible
speculation scheme (the paper's §1 premise)."""

import pytest

from repro.core.spectre import build_spectre_v1, spectre_leak_trial
from repro.schemes.registry import TABLE1_SCHEMES


class TestSpectreVictim:
    def test_victim_structure(self):
        victim = build_spectre_v1()
        assert victim.program.at(victim.branch_slot).name == "bounds check"
        assert victim.probe_line(3) == victim.probe_base + 3 * 64


class TestSpectreLeak:
    @pytest.mark.parametrize("secret", [1, 7, 13])
    def test_unsafe_leaks_secret(self, secret):
        result = spectre_leak_trial("unsafe", secret)
        assert result.leaked
        assert result.hits == [secret]

    @pytest.mark.parametrize("scheme", TABLE1_SCHEMES)
    def test_invisible_schemes_block_spectre(self, scheme):
        result = spectre_leak_trial(scheme, secret=7)
        assert not result.leaked
        assert result.hits == []

    @pytest.mark.parametrize("scheme", ["fence-spectre", "fence-futuristic"])
    def test_fence_defenses_block_spectre(self, scheme):
        result = spectre_leak_trial(scheme, secret=7)
        assert not result.leaked
        assert result.hits == []

    def test_cleanupspec_blocks_spectre(self):
        result = spectre_leak_trial("cleanupspec", secret=5)
        assert not result.leaked

    def test_in_bounds_access_is_architectural(self):
        """An in-bounds index is correct-path execution: the probe fill
        happens architecturally and persists under any scheme."""
        for scheme in ("unsafe", "dom-nontso"):
            result = spectre_leak_trial(scheme, secret=2, out_of_bounds_index=1)
            assert result.hits == [2]
