"""Tests for the covert-channel evaluation (Fig. 11) and the figure
drivers (Fig. 7 / Fig. 12 / ablation)."""

import pytest

from repro.core.attack import DCacheAttack, ICacheAttack
from repro.core.channel import ChannelPoint, evaluate_channel, format_channel_curve
from repro.core.experiments import (
    ablation_advanced_defense,
    fig7_contention_histogram,
    fig12_defense_overhead,
)
from repro.workloads.synthetic import workload_by_name


class TestChannel:
    def test_noiseless_channel_is_error_free(self):
        attack = DCacheAttack("dom-nontso")
        points = evaluate_channel(attack, num_bits=8, repetitions=(1,))
        assert points[0].errors == 0
        assert points[0].bits == 8

    def test_bitrate_decreases_with_repetitions(self):
        attack = ICacheAttack("dom-nontso")
        points = evaluate_channel(attack, num_bits=6, repetitions=(1, 3))
        assert points[0].bits_per_megacycle > points[1].bits_per_megacycle
        assert points[0].cycles_per_bit < points[1].cycles_per_bit

    def test_point_arithmetic(self):
        p = ChannelPoint(
            repetitions=1, bits=10, errors=2, erasures=0, total_cycles=1_000_000
        )
        assert p.error_rate == 0.2
        assert p.bits_per_megacycle == 10.0
        assert p.nominal_bps == pytest.approx(10 * 3.6e9 / 1e6)

    def test_empty_point_degenerate(self):
        p = ChannelPoint(repetitions=1, bits=0, errors=0, erasures=0, total_cycles=0)
        assert p.error_rate == 0.0
        assert p.bits_per_megacycle == 0.0

    def test_format_curve(self):
        points = [
            ChannelPoint(repetitions=1, bits=4, errors=1, erasures=0, total_cycles=4000)
        ]
        text = format_channel_curve(points, "demo")
        assert "demo" in text and "0.250" in text


class TestFig7:
    def test_gadget_shifts_target_latency(self):
        hists = fig7_contention_histogram(trials=12)
        base = hists["baseline"]
        interf = hists["interference"]
        assert base.count == interf.count == 12
        # clear bimodal separation: gap larger than both spreads
        assert interf.mean - base.mean > 20
        assert interf.mean - base.mean > 2 * max(base.stdev, interf.stdev, 1)

    def test_jitter_spreads_distribution(self):
        tight = fig7_contention_histogram(trials=8, dram_jitter=0)
        assert tight["baseline"].stdev == 0.0
        loose = fig7_contention_histogram(trials=8, dram_jitter=30)
        assert loose["baseline"].stdev > 0.0


class TestFig12:
    def test_overhead_shape(self):
        report = fig12_defense_overhead(
            workloads=[workload_by_name("branchy"), workload_by_name("stream")]
        )
        # Spectre fence hurts the branchy kernel, not the branch-free one
        branchy = next(r for r in report.rows if r.workload == "branchy")
        stream = next(r for r in report.rows if r.workload == "stream")
        assert branchy.slowdown("fence-spectre") > 1.5
        assert stream.slowdown("fence-spectre") < 1.1
        # Futuristic >= Spectre everywhere
        for row in report.rows:
            assert row.slowdown("fence-futuristic") >= row.slowdown(
                "fence-spectre"
            ) - 0.01

    def test_geomean(self):
        report = fig12_defense_overhead(
            workloads=[workload_by_name("ilp")], schemes=("fence-futuristic",)
        )
        row = report.rows[0]
        assert report.geomean("fence-futuristic") == pytest.approx(
            row.slowdown("fence-futuristic")
        )

    def test_defenses_preserve_results(self):
        # checksum equality is asserted inside the driver; reaching here
        # without AssertionError is the test
        fig12_defense_overhead(workloads=[workload_by_name("mixed")])


class TestAblation:
    def test_priority_defense_blocks_and_costs(self):
        result = ablation_advanced_defense()
        assert result.blocks_gdnpeu
        # resource-holding + preemption is not free but also not fatal
        geomean = result.overhead.geomean("priority")
        assert 0.9 <= geomean < 3.0
