"""Structural tests for victim builders and the trial harness."""

import pytest

from repro.core.harness import run_victim_trial
from repro.core.victims import (
    ADDR_A,
    ADDR_B,
    ADDR_REF,
    ATTACK_HIERARCHY,
    gdmshr_victim,
    gdnpeu_victim,
    girs_victim,
)
from repro.memory.address import AddressLayout


def llc_layout():
    cfg = ATTACK_HIERARCHY.llc
    return AddressLayout(
        line_size=cfg.line_size, num_sets=cfg.num_sets, num_slices=cfg.num_slices
    )


class TestVictimSpecs:
    @pytest.mark.parametrize(
        "builder,kwargs",
        [
            (gdnpeu_victim, {"variant": "vd-vd"}),
            (gdnpeu_victim, {"variant": "vi-ad"}),
            (gdmshr_victim, {"variant": "vd-vd"}),
            (gdmshr_victim, {"variant": "vi-ad"}),
            (girs_victim, {}),
        ],
    )
    def test_spec_wellformed(self, builder, kwargs):
        spec = builder(**kwargs)
        assert spec.program.at(spec.branch_slot).name == "victim branch"
        assert spec.monitored_lines()
        # prime/flush targets are disjoint at line granularity
        prime = {a & ~63 for a in spec.prime_l1}
        flush = {a & ~63 for a in spec.flush_lines}
        assert not prime & flush

    def test_gdnpeu_lines_congruent(self):
        spec = gdnpeu_victim()
        assert llc_layout().same_set(spec.line_a, spec.line_b)
        assert spec.line_a != spec.line_b

    def test_monitored_lines_avoid_code_sets(self):
        """Monitored data lines must not share LLC sets with I-lines,
        or code fetches would corrupt the replacement-state channel."""
        layout = llc_layout()
        for spec in (gdnpeu_victim(), gdmshr_victim(), girs_victim()):
            code_sets = {
                layout.global_set(spec.program.address_of_slot(s))
                for s in range(len(spec.program))
            }
            for line in (spec.line_a, spec.line_b):
                if line is not None and spec.gadget != "gdmshr":
                    assert layout.global_set(line) not in code_sets
            assert layout.global_set(ADDR_REF) not in code_sets

    def test_vi_variants_have_cold_target(self):
        for spec in (
            gdnpeu_victim(variant="vi-ad"),
            gdmshr_victim(variant="vi-ad"),
            girs_victim(),
        ):
            assert spec.target_iline is not None
            assert spec.target_iline in spec.cold_ilines

    def test_girs_target_line_separate_from_join(self):
        spec = girs_victim()
        end_line = spec.program.address_of_label("end") & ~63
        assert end_line != spec.target_iline

    def test_invalid_variants_rejected(self):
        with pytest.raises(ValueError):
            gdnpeu_victim(variant="vd-xx")
        with pytest.raises(ValueError):
            gdmshr_victim(variant="zz")


class TestHarness:
    def test_trial_is_deterministic(self):
        spec = gdnpeu_victim()
        a = run_victim_trial(spec, "dom-nontso", 1)
        b = run_victim_trial(spec, "dom-nontso", 1)
        assert a.access_cycle == b.access_cycle
        assert a.cycles == b.cycles

    def test_secret_validated(self):
        with pytest.raises(ValueError):
            run_victim_trial(gdnpeu_victim(), "unsafe", 2)

    def test_reference_access_recorded(self):
        spec = gdnpeu_victim()
        r = run_victim_trial(
            spec, "dom-nontso", 0, reference_accesses=[(ADDR_REF, 120)]
        )
        assert r.first_access(ADDR_REF) == 120

    def test_order_helper(self):
        spec = gdnpeu_victim()
        r = run_victim_trial(spec, "dom-nontso", 0)
        assert r.order(ADDR_A, ADDR_B) == "xy"
        assert r.order(ADDR_A, 0xDEAD000) is None

    def test_mispredict_happened(self):
        """The harness's mistraining must actually cause the squash the
        attack rides on."""
        spec = gdnpeu_victim()
        r = run_victim_trial(spec, "dom-nontso", 1)
        assert r.core.stats.mispredicts >= 1
        assert r.core.stats.squashes >= 1

    def test_noise_changes_log(self):
        spec = gdnpeu_victim()
        quiet = run_victim_trial(spec, "dom-nontso", 0)
        noisy = run_victim_trial(
            spec,
            "dom-nontso",
            0,
            noise_rate=0.05,
            noise_pool=[0x700000, 0x700040],
            seed=3,
        )
        assert len(noisy.visible) > len(quiet.visible)
