"""Tests for message exfiltration over the PoC channels."""

import pytest

from repro.core.attack import ICacheAttack
from repro.core.exfiltrate import (
    ExfiltrationReport,
    bits_to_bytes,
    bytes_to_bits,
    exfiltrate,
    exfiltrate_key,
)


class TestBitPacking:
    def test_round_trip(self):
        payload = bytes([0x00, 0xFF, 0xA5, 0x3C])
        assert bits_to_bytes(bytes_to_bits(payload)) == payload

    def test_msb_first(self):
        assert bytes_to_bits(b"\x80")[0] == 1
        assert bytes_to_bits(b"\x01")[-1] == 1

    def test_none_bits_become_zero(self):
        assert bits_to_bytes([None] * 8) == b"\x00"

    def test_partial_trailing_bits_dropped(self):
        assert bits_to_bytes([1] * 10) == b"\xff"


class TestExfiltration:
    def test_clean_channel_transfers_exactly(self):
        attack = ICacheAttack("dom-nontso")
        report = exfiltrate(attack, b"K!", repetitions=1)
        assert report.received == b"K!"
        assert report.bit_errors == 0
        assert report.bit_accuracy == 1.0
        assert report.byte_accuracy == 1.0
        assert report.total_cycles > 0

    def test_aes_key_through_invisible_speculation(self):
        """The paper's headline: an AES-128 key crosses an
        invisible-speculation machine (0.3 s at 80% accuracy on their
        hardware; error-free and faster here, noiseless)."""
        attack = ICacheAttack("invisispec-spectre")
        report = exfiltrate_key(attack, repetitions=1)
        assert len(report.sent) == 16
        assert report.byte_accuracy == 1.0
        assert report.seconds_at(3.6e9) < 0.3

    def test_blocked_channel_garbles(self):
        attack = ICacheAttack("fence-spectre")
        report = exfiltrate(attack, bytes([0b10101010]), repetitions=1)
        assert report.bit_errors > 0
        assert report.received != report.sent

    def test_summary_mentions_accuracy(self):
        report = ExfiltrationReport(
            sent=b"ab", received=b"ab", repetitions=2,
            total_cycles=10_000, bit_errors=0,
        )
        text = report.summary()
        assert "100.0%" in text
        assert "reps=2" in text

    def test_cycles_per_bit(self):
        report = ExfiltrationReport(
            sent=b"a", received=b"a", repetitions=1,
            total_cycles=800, bit_errors=0,
        )
        assert report.cycles_per_bit == 100.0
