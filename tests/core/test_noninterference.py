"""Ideal-invisible-speculation (§5.1) tests: C(E) = C(NoSpec(E))."""

import pytest

from repro.core.noninterference import (
    check_ideal_invisible_speculation,
    llc_trace,
)
from repro.core.victims import gdnpeu_victim, girs_victim


class TestIdealInvisibleSpeculation:
    @pytest.mark.parametrize("scheme", ["fence-spectre", "fence-futuristic"])
    @pytest.mark.parametrize("secret", [0, 1])
    def test_fence_defense_satisfies_property(self, scheme, secret):
        report = check_ideal_invisible_speculation(
            gdnpeu_victim(), scheme, secret
        )
        assert report.holds, report.divergence()

    def test_unsafe_violates_property(self):
        report = check_ideal_invisible_speculation(gdnpeu_victim(), "unsafe", 1)
        assert not report.holds

    @pytest.mark.parametrize(
        "scheme", ["dom-nontso", "invisispec-spectre", "safespec-wfb"]
    )
    def test_invisible_schemes_violate_on_interference_victim(self, scheme):
        """The paper's thesis as a property: the interference victim
        makes every invisible-speculation scheme's visible LLC pattern
        depend on mis-speculation."""
        report = check_ideal_invisible_speculation(
            gdnpeu_victim(), scheme, secret=1
        )
        assert not report.holds
        assert report.divergence() is not None

    def test_girs_violation_for_unprotected_icache(self):
        report = check_ideal_invisible_speculation(girs_victim(), "dom-nontso", 0)
        assert not report.holds

    def test_girs_holds_for_protected_icache(self):
        """SafeSpec's shadowed I-side keeps GIRS's trace speculation-
        invariant (it is invulnerable in Table 1)."""
        report = check_ideal_invisible_speculation(girs_victim(), "safespec-wfb", 0)
        assert report.holds


class TestTraceMachinery:
    def test_llc_trace_returns_branch_outcomes(self):
        trace, outcomes = llc_trace(gdnpeu_victim(), "unsafe", 0)
        assert isinstance(trace, list)
        assert outcomes.count(False) >= 1  # the victim branch: not taken

    def test_secret_changes_spec_trace_under_dom(self):
        t0, _ = llc_trace(gdnpeu_victim(), "dom-nontso", 0)
        t1, _ = llc_trace(gdnpeu_victim(), "dom-nontso", 1)
        assert t0 != t1  # the covert channel, stated as trace inequality

    def test_secret_does_not_change_trace_under_fence(self):
        t0, _ = llc_trace(gdnpeu_victim(), "fence-spectre", 0)
        t1, _ = llc_trace(gdnpeu_victim(), "fence-spectre", 1)
        assert t0 == t1
