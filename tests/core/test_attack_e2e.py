"""End-to-end PoC tests (§4.2 D-cache, §4.3 I-cache).

These are the paper's headline results: with invisible speculation ON,
secret bits still cross cores through the cache."""

import pytest

from repro.core.attack import DCacheAttack, ICacheAttack

BITSTREAM = (0, 1, 1, 0, 1, 0)


class TestDCachePoC:
    @pytest.mark.parametrize(
        "scheme", ["dom-nontso", "invisispec-spectre", "safespec-wfb"]
    )
    def test_leaks_through_vulnerable_schemes(self, scheme):
        attack = DCacheAttack(scheme)
        trials = [attack.send_bit(bit) for bit in BITSTREAM]
        assert all(t.correct for t in trials)

    def test_blocked_by_fence_defense(self):
        """Under the fence defense the received bits carry no signal:
        both secrets decode to the same value."""
        attack = DCacheAttack("fence-spectre")
        zero = attack.send_bit(0).received
        one = attack.send_bit(1).received
        assert zero == one

    def test_blocked_by_priority_defense(self):
        attack = DCacheAttack("priority")
        zero = attack.send_bit(0).received
        one = attack.send_bit(1).received
        assert zero == one

    def test_cycles_accounted(self):
        attack = DCacheAttack("dom-nontso")
        trial = attack.send_bit(1)
        assert trial.cycles > 0

    def test_majority_vote_reduces_noise_errors(self):
        noisy = DCacheAttack("dom-nontso", noise_rate=0.001, seed=11)
        single = sum(
            not noisy.send_bit(b % 2).correct for b in range(20)
        )
        voted_attack = DCacheAttack("dom-nontso", noise_rate=0.001, seed=11)
        voted = sum(
            not voted_attack.send_bit_with_retries(b % 2, 5).correct
            for b in range(20)
        )
        assert voted <= single

    def test_deterministic_noiseless(self):
        a = DCacheAttack("dom-nontso").send_bit(1)
        b = DCacheAttack("dom-nontso").send_bit(1)
        assert a.received == b.received
        assert a.cycles == b.cycles


class TestICachePoC:
    @pytest.mark.parametrize("scheme", ["dom-nontso", "invisispec-spectre"])
    def test_leaks_through_unprotected_icache_schemes(self, scheme):
        attack = ICacheAttack(scheme)
        trials = [attack.send_bit(bit) for bit in BITSTREAM]
        assert all(t.correct for t in trials)

    @pytest.mark.parametrize("scheme", ["safespec-wfb", "muontrap", "condspec"])
    def test_blocked_by_icache_protecting_schemes(self, scheme):
        """Schemes that shadow the I-side never fetch the target line
        visibly: every bit decodes as 1."""
        attack = ICacheAttack(scheme)
        assert attack.send_bit(0).received == attack.send_bit(1).received == 1

    def test_blocked_by_fence(self):
        attack = ICacheAttack("fence-spectre")
        assert attack.send_bit(0).received == attack.send_bit(1).received

    def test_faster_than_dcache(self):
        """The paper's I-cache channel is the faster one (Fig. 11)."""
        d = DCacheAttack("dom-nontso").send_bit(1)
        i = ICacheAttack("dom-nontso").send_bit(1)
        assert i.cycles < d.cycles
