"""Receiver tests: QLRU replacement-state receiver and Flush+Reload."""

import pytest

from repro.core.receivers import FlushReloadReceiver, QLRUReceiver
from repro.core.victims import ADDR_A, ADDR_B, ATTACK_HIERARCHY
from repro.memory.hierarchy import AccessKind
from repro.system.agent import AttackerAgent
from repro.system.machine import Machine

VICTIM, ATTACKER = 0, 2


@pytest.fixture
def machine():
    return Machine(3, hierarchy_config=ATTACK_HIERARCHY)


def victim_access(machine, addr):
    """A victim-core LLC access (as the unprotected loads A/B make)."""
    machine.hierarchy.access(
        VICTIM, addr, AccessKind.DATA, visible=True, cycle=machine.cycle
    )


class TestQLRUReceiver:
    def test_requires_congruent_lines(self, machine):
        agent = AttackerAgent(machine, ATTACKER)
        with pytest.raises(ValueError):
            QLRUReceiver(agent, ADDR_A, ADDR_A + 64)

    def test_eviction_sets_disjoint_and_congruent(self, machine):
        agent = AttackerAgent(machine, ATTACKER)
        receiver = QLRUReceiver(agent, ADDR_A, ADDR_B)
        layout = machine.hierarchy.llc.layout
        assert len(receiver.evs1) == machine.hierarchy.llc.num_ways - 1
        assert len(receiver.evs2) == machine.hierarchy.llc.num_ways - 1
        assert not set(receiver.evs1) & set(receiver.evs2)
        for line in receiver.evs1 + receiver.evs2:
            assert layout.same_set(line, ADDR_A)
            assert line not in (ADDR_A, ADDR_B)

    def test_decodes_ab_order_as_zero(self, machine):
        agent = AttackerAgent(machine, ATTACKER)
        receiver = QLRUReceiver(agent, ADDR_A, ADDR_B)
        receiver.prime()
        victim_access(machine, ADDR_A)
        victim_access(machine, ADDR_B)
        assert receiver.probe_and_decode() == 0

    def test_decodes_ba_order_as_one(self, machine):
        agent = AttackerAgent(machine, ATTACKER)
        receiver = QLRUReceiver(agent, ADDR_A, ADDR_B)
        receiver.prime()
        victim_access(machine, ADDR_B)
        victim_access(machine, ADDR_A)
        assert receiver.probe_and_decode() == 1

    def test_decode_repeatable_across_fresh_machines(self):
        for order, expected in ((("a", "b"), 0), (("b", "a"), 1)):
            machine = Machine(3, hierarchy_config=ATTACK_HIERARCHY)
            agent = AttackerAgent(machine, ATTACKER)
            receiver = QLRUReceiver(agent, ADDR_A, ADDR_B)
            receiver.prime()
            for which in order:
                victim_access(machine, ADDR_A if which == "a" else ADDR_B)
            assert receiver.probe_and_decode() == expected

    def test_prime_state_matches_figure8a(self, machine):
        """After priming: EVS1 lines saturated at age 0, A at insert age."""
        agent = AttackerAgent(machine, ATTACKER)
        receiver = QLRUReceiver(agent, ADDR_A, ADDR_B)
        receiver.prime()
        contents = receiver.set_snapshot()
        ages = receiver.set_ages()
        a_line = machine.hierarchy.llc.layout.line_addr(ADDR_A)
        assert a_line in contents
        assert ages[contents.index(a_line)] == 1
        for way, line in enumerate(contents):
            if line in set(receiver.evs1):
                assert ages[way] == 0


class TestFlushReload:
    def test_detects_victim_touch(self, machine):
        agent = AttackerAgent(machine, ATTACKER)
        receiver = FlushReloadReceiver(agent, [0x77_000])
        receiver.flush_phase()
        victim_access(machine, 0x77_000)
        obs = receiver.reload_phase()[0]
        assert obs.hit

    def test_detects_absence(self, machine):
        agent = AttackerAgent(machine, ATTACKER)
        receiver = FlushReloadReceiver(agent, [0x77_000])
        receiver.flush_phase()
        obs = receiver.reload_phase()[0]
        assert not obs.hit

    def test_instruction_line_fetch_visible_cross_core(self, machine):
        """Victim I-fetches land in the shared LLC and are observable —
        the I-cache PoC's channel."""
        agent = AttackerAgent(machine, ATTACKER)
        line = 0x40_0000  # a code line
        receiver = FlushReloadReceiver(agent, [line])
        receiver.flush_phase()
        machine.hierarchy.access(
            VICTIM, line, AccessKind.INST, visible=True, cycle=0
        )
        assert receiver.reload_phase()[0].hit

    def test_hit_lines_helper(self, machine):
        agent = AttackerAgent(machine, ATTACKER)
        lines = [0x70_000, 0x71_000, 0x72_000]
        receiver = FlushReloadReceiver(agent, lines)
        receiver.flush_phase()
        victim_access(machine, lines[1])
        assert receiver.hit_lines() == [lines[1]]
