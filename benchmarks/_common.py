"""Shared helpers for the benchmark harnesses.

Every bench regenerates one paper artifact, prints it, and archives it
under ``benchmarks/results/`` so EXPERIMENTS.md can reference the exact
reproduced rows/series.
"""

from __future__ import annotations

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit_report(name: str, text: str) -> str:
    """Print and persist a report; returns the file path."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    print()
    print(text)
    return path
