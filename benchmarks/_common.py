"""Shared helpers for the benchmark harnesses.

Every bench regenerates one paper artifact, prints it, and archives it
under ``benchmarks/results/`` so EXPERIMENTS.md can reference the exact
reproduced rows/series.  The sweep-construction helpers keep the bench
files declarative: one canonical victim/scheme grid, one way to build
seed-replicated spec lists, one way to time a runner over them.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Canonical sweep grid shared by the throughput / fault-tolerance /
#: speedup benches: all three paper gadgets against a scheme sample
#: spanning the defense families (delay, invisible, partition, fence).
SWEEP_VICTIMS = ("gdnpeu", "gdmshr", "girs")
SWEEP_SCHEMES = (
    "dom-nontso",
    "invisispec-spectre",
    "muontrap",
    "fence-spectre",
)


def emit_report(
    name: str, text: str, data: Optional[Dict[str, Any]] = None
) -> str:
    """Print and persist a report; returns the ``.txt`` file path.

    Every report also gets a machine-readable ``BENCH_<name>.json``
    companion so CI gates (and EXPERIMENTS.md tooling) can assert on
    numbers instead of grepping prose.  ``data`` carries the bench's
    structured payload — speedup ratios, trial counts, budget floors;
    without it the JSON still records the name/report linkage.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    json_path = os.path.join(RESULTS_DIR, f"BENCH_{name}.json")
    payload = {"name": name, "report": f"{name}.txt"}
    if data is not None:
        payload.update(data)
    with open(json_path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print()
    print(text)
    return path


def sweep_grid(
    victims: Sequence[str] = SWEEP_VICTIMS,
    schemes: Sequence[str] = SWEEP_SCHEMES,
    *,
    seeds: Sequence[int] = (0,),
    **common,
) -> list:
    """Victim x scheme x secret specs, replicated across base seeds.

    The one-liner every bench used to hand-roll: ``expand_grid`` over
    the grid, repeated per ``seeds`` entry (each gets its own stable
    CRC32-derived per-trial seed).  ``common`` forwards to every
    :class:`~repro.runner.TrialSpec`.
    """
    from repro.runner import expand_grid

    return [
        spec
        for base_seed in seeds
        for spec in expand_grid(
            list(victims), list(schemes), base_seed=base_seed, **common
        )
    ]


def with_runner(fn: Callable, **runner_kwargs):
    """Run ``fn(runner)`` inside a default ``make_runner`` context.

    ``make_runner`` resolves to the serial runner on single-CPU hosts
    and to a process pool elsewhere; results are identical either way.
    """
    from repro.runner import make_runner

    with make_runner(**runner_kwargs) as runner:
        return fn(runner)


def timed_outcomes(runner, specs) -> Tuple[List, float]:
    """``runner.run_outcomes(specs)`` plus its wall-clock seconds."""
    start = time.perf_counter()
    outcomes = runner.run_outcomes(specs)
    return outcomes, time.perf_counter() - start
