"""Simulator micro-throughput (not a paper figure).

pytest-benchmark timing of the substrate itself — cache accesses,
pipeline cycles, full victim trials, whole sweeps — so performance
regressions in the simulator are visible.  The speedup case also
records the idle-cycle fast-forward's measured gains in
``results/throughput_speedup.txt``.
"""

import time

import pytest

from repro.core.harness import prepare_machine, run_victim_trial
from repro.core.victims import gdnpeu_victim, victim_by_name
from repro.isa import ProgramBuilder
from repro.memory.cache import Cache
from repro.memory.hierarchy import CacheHierarchy
from repro.pipeline import Core
from repro.workloads.synthetic import workload_by_name

from _common import (
    SWEEP_SCHEMES,
    SWEEP_VICTIMS,
    emit_report,
    sweep_grid,
    timed_outcomes,
    with_runner,
)


@pytest.mark.benchmark(group="throughput")
def test_bench_cache_access_throughput(benchmark):
    cache = Cache("bench", num_sets=64, num_ways=16, policy="qlru")

    def body():
        for i in range(1000):
            addr = (i * 2654435761) & 0xFFFFF
            if not cache.access(addr):
                cache.fill(addr)

    benchmark(body)


@pytest.mark.benchmark(group="throughput")
def test_bench_pipeline_cycle_throughput(benchmark):
    workload = workload_by_name("ilp")

    def body():
        hierarchy = CacheHierarchy(1)
        core = Core(0, workload.program, hierarchy)
        core.run(max_cycles=100_000)
        return core.stats.cycles

    benchmark(body)


@pytest.mark.benchmark(group="throughput")
def test_bench_full_victim_trial(benchmark):
    spec = gdnpeu_victim()

    def body():
        return run_victim_trial(spec, "dom-nontso", 1).cycles

    benchmark(body)


@pytest.mark.benchmark(group="throughput")
def test_bench_sweep_runner(benchmark):
    """A whole victim x scheme x secret sweep through the runner API."""
    specs = sweep_grid()

    def body():
        return with_runner(lambda runner: runner.run(specs))

    result = benchmark.pedantic(body, rounds=1, iterations=1)
    assert len(result) == len(specs)
    assert all(s.retired > 0 for s in result)


def _trial_seconds(victim: str, scheme: str, secret: int, fast_forward: bool):
    spec = victim_by_name(victim)
    machine, core, _ = prepare_machine(spec, scheme, secret)
    start = time.perf_counter()
    machine.run(
        until=lambda: core.halted,
        max_cycles=20_000,
        fast_forward=fast_forward,
    )
    return time.perf_counter() - start, core.stats.cycles


@pytest.mark.benchmark(group="throughput")
def test_bench_fast_forward_speedup(benchmark):
    """Record the fast-forward speedup at trial and sweep granularity.

    The idle-cycle fast-forward must be cycle-exact (asserted here via
    identical cycle counts) and is expected to be >=1.3x on a single
    memory-bound trial and >=2x across a mixed sweep.
    """
    grid = [
        (victim, scheme, secret)
        for victim in SWEEP_VICTIMS
        for scheme in SWEEP_SCHEMES
        for secret in (0, 1)
    ]

    def measure():
        # Single-trial speedup on the paper's main gadget under DoM.
        slow_t, slow_cycles = _trial_seconds("gdnpeu", "dom-nontso", 1, False)
        fast_t, fast_cycles = _trial_seconds("gdnpeu", "dom-nontso", 1, True)
        assert fast_cycles == slow_cycles
        single = slow_t / fast_t

        # Sweep-level speedup across the full grid.
        sweep_slow = sweep_fast = 0.0
        for victim, scheme, secret in grid:
            t, c_slow = _trial_seconds(victim, scheme, secret, False)
            sweep_slow += t
            t, c_fast = _trial_seconds(victim, scheme, secret, True)
            sweep_fast += t
            assert c_fast == c_slow, (victim, scheme, secret)
        return single, sweep_slow / sweep_fast

    single, sweep = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit_report(
        "throughput_speedup",
        "\n".join(
            [
                "Idle-cycle fast-forward speedup (cycle-exact, asserted):",
                f"  single trial (gdnpeu / dom-nontso): {single:.2f}x",
                f"  sweep ({len(grid)} trials, "
                f"{len(SWEEP_VICTIMS)} victims x {len(SWEEP_SCHEMES)} schemes): "
                f"{sweep:.2f}x",
            ]
        ),
    )
    assert single >= 1.3
    assert sweep >= 2.0


@pytest.mark.benchmark(group="throughput")
def test_bench_snapshot_fork_and_cache_speedup(benchmark, tmp_path):
    """Record the snapshot/fork and trial-cache speedups on a secret x
    seed sweep (the sweep shape of the paper's Table 1 / Figure 12
    campaigns).

    Forked execution shares each group's secret-independent prefix and
    relabels inert-seed variants, so the sweep must come in >=2x faster
    than cold — with bit-identical outcomes (asserted; the differential
    suite proves the same per scheme).  A warm content-addressed cache
    then replays the whole sweep without simulating at all.
    """
    from repro.runner import SerialSweepRunner

    specs = sweep_grid(["gdnpeu"], SWEEP_SCHEMES, seeds=(1, 2, 3, 4, 5))

    def measure():
        cold, cold_t = timed_outcomes(SerialSweepRunner(), specs)
        forked, fork_t = timed_outcomes(
            SerialSweepRunner(fork=True, cache_dir=tmp_path), specs
        )
        assert forked == cold  # bit-identical, not just statistically alike
        cached, cache_t = timed_outcomes(
            SerialSweepRunner(cache_dir=tmp_path), specs
        )
        assert cached == cold
        return cold_t, fork_t, cache_t

    cold_t, fork_t, cache_t = benchmark.pedantic(measure, rounds=1, iterations=1)
    fork_x = cold_t / fork_t
    cache_x = cold_t / cache_t
    emit_report(
        "snapshot_speedup",
        "\n".join(
            [
                "Snapshot/fork + trial-cache speedup "
                f"({len(specs)} trials: gdnpeu x {len(SWEEP_SCHEMES)} "
                "schemes x 2 secrets x 5 seeds; outcomes asserted "
                "bit-identical to cold execution):",
                f"  cold sweep:              {cold_t:.2f} s",
                f"  fork=True sweep:         {fork_t:.2f} s  "
                f"({fork_x:.2f}x, budget >=2x)",
                f"  warm-cache replay:       {cache_t * 1e3:.1f} ms  "
                f"({cache_x:.0f}x)",
                "",
                "Fork shares each group's secret-independent prefix "
                "(found automatically from the cache-probe event stream) "
                "and relabels inert-seed variants; the cache replays "
                "memoized outcomes keyed on spec digest + snapshot "
                "state-schema hash.",
            ]
        ),
    )
    assert fork_x >= 2.0
    assert cache_x >= 10.0


@pytest.mark.benchmark(group="throughput")
def test_bench_tracing_overhead(benchmark):
    """Record the structured-tracing overhead on full victim trials.

    Tracing disabled is a single attribute load per instrumentation
    point, so it must stay within noise of the pre-instrumentation
    baseline; tracing enabled buffers every event and is allowed up to
    3x (asserted).  Both runs are checked cycle-identical — the tracer
    is an observer, never a participant.
    """
    from repro.trace import Tracer

    spec = gdnpeu_victim()
    rounds = 30

    def mean_trial_seconds(make_tracer):
        start = time.perf_counter()
        cycles = None
        for _ in range(rounds):
            result = run_victim_trial(
                spec, "dom-nontso", 1, tracer=make_tracer()
            )
            assert cycles is None or result.cycles == cycles
            cycles = result.cycles
        return (time.perf_counter() - start) / rounds, cycles

    def measure():
        # Warm-up interleaved fairly: one of each first.
        run_victim_trial(spec, "dom-nontso", 1)
        run_victim_trial(spec, "dom-nontso", 1, tracer=Tracer())
        off_s, off_cycles = mean_trial_seconds(lambda: None)
        on_s, on_cycles = mean_trial_seconds(Tracer)
        assert on_cycles == off_cycles
        return off_s, on_s

    off_s, on_s = benchmark.pedantic(measure, rounds=1, iterations=1)
    ratio = on_s / off_s
    emit_report(
        "trace_overhead",
        "\n".join(
            [
                "Structured-tracing overhead "
                f"(gdnpeu / dom-nontso, mean of {rounds} trials):",
                f"  tracing disabled: {off_s * 1e3:.4f} ms/trial",
                f"  tracing enabled:  {on_s * 1e3:.4f} ms/trial",
                f"  enabled / disabled ratio: {ratio:.2f}x (budget 3x)",
                "",
                "Disabled-path before/after (pytest-benchmark min, same "
                "host, commit before vs after the event bus landed):",
                "  cache_access      2.698 -> 2.731 ms  (+1.2%)",
                "  pipeline_cycle    7.924 -> 8.404 ms  (+6.1%)",
                "  full_victim_trial 8.938 -> 9.418 ms  (+5.4%)",
                "(within this container's run-to-run noise; the max/min "
                "spread per bench exceeds 5x)",
                "Disabled-path cost per instrumentation point is one "
                "attribute load; the differential invisibility suite "
                "(tests/trace/test_differential.py) asserts bit-equal "
                "results either way.",
            ]
        ),
    )
    assert ratio <= 3.0


@pytest.mark.benchmark(group="throughput")
def test_bench_memory_bound_core(benchmark):
    workload = workload_by_name("pointer_chase")

    def body():
        hierarchy = CacheHierarchy(1)
        for addr, value in workload.memory_image.items():
            hierarchy.memory.write(addr, value)
        core = Core(0, workload.program, hierarchy)
        core.run(max_cycles=500_000)
        return core.stats.cycles

    benchmark(body)
