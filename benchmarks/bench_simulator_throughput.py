"""Simulator micro-throughput (not a paper figure).

pytest-benchmark timing of the substrate itself — cache accesses,
pipeline cycles, full victim trials — so performance regressions in the
simulator are visible.
"""

import pytest

from repro.core.harness import run_victim_trial
from repro.core.victims import gdnpeu_victim
from repro.isa import ProgramBuilder
from repro.memory.cache import Cache
from repro.memory.hierarchy import CacheHierarchy
from repro.pipeline import Core
from repro.workloads.synthetic import workload_by_name


@pytest.mark.benchmark(group="throughput")
def test_bench_cache_access_throughput(benchmark):
    cache = Cache("bench", num_sets=64, num_ways=16, policy="qlru")

    def body():
        for i in range(1000):
            addr = (i * 2654435761) & 0xFFFFF
            if not cache.access(addr):
                cache.fill(addr)

    benchmark(body)


@pytest.mark.benchmark(group="throughput")
def test_bench_pipeline_cycle_throughput(benchmark):
    workload = workload_by_name("ilp")

    def body():
        hierarchy = CacheHierarchy(1)
        core = Core(0, workload.program, hierarchy)
        core.run(max_cycles=100_000)
        return core.stats.cycles

    benchmark(body)


@pytest.mark.benchmark(group="throughput")
def test_bench_full_victim_trial(benchmark):
    spec = gdnpeu_victim()

    def body():
        return run_victim_trial(spec, "dom-nontso", 1).cycles

    benchmark(body)


@pytest.mark.benchmark(group="throughput")
def test_bench_memory_bound_core(benchmark):
    workload = workload_by_name("pointer_chase")

    def body():
        hierarchy = CacheHierarchy(1)
        for addr, value in workload.memory_image.items():
            hierarchy.memory.write(addr, value)
        core = Core(0, workload.program, hierarchy)
        core.run(max_cycles=500_000)
        return core.stats.cycles

    benchmark(body)
