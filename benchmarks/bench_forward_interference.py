"""Forward speculative interference: Table-1-style matrix + three-way
verification.

"It's a Trap!" (Aimoniotis et al., 2021) inverts the paper's channel:
younger squashed secret-dependent instructions perturb *older,
speculation-invariant* ones through shared EU ports, the MSHR file and
RS pressure.  This bench sweeps the three forward victims
(``fwd-eu`` / ``fwd-mshr`` / ``fwd-rs``) across all 16 schemes with the
production runner, renders the matrix of leaking schemes, checks the
:class:`repro.workloads.ForwardReceiver` decodes the planted secret on
every leaking cell, and renders the three-way reconciliation table
(static detector x symbolic verdict x dynamic leak signal) — which
must agree on every pair.

Expected pattern (forward interference breaks invisibility):
  fwd-eu    leaks on every invisible-speculation AND delay-on-miss
            scheme (the secret travels as EU time, not as an address)
  fwd-mshr  leaks exactly where speculative misses occupy MSHRs
            (unsafe, CleanupSpec, InvisiSpec, SafeSpec, MuonTrap)
  fwd-rs    leaks wherever the transmitter load issues speculatively
            (value prediction drains the swarm in both runs: clean)
  fence / STT / priority: clean everywhere, for three different
  reasons (no speculative issue, taint gating, EU preemption +
  operand-independent RS holds).
"""

import pytest

from repro.core.victims import victim_by_name
from repro.schemes.registry import SCHEME_FACTORIES
from repro.staticcheck.crossval import reconcile_verdicts, render_reconciliation
from repro.symni.replay import summary_signals
from repro.workloads import FORWARD_VICTIMS, ForwardReceiver

from _common import emit_report, sweep_grid, with_runner

ALL_SCHEMES = tuple(sorted(SCHEME_FACTORIES))

INVISIBLE_SCHEMES = (
    "cleanupspec",
    "invisispec-futuristic",
    "invisispec-spectre",
    "muontrap",
    "safespec-wfb",
    "safespec-wfc",
)


def run_forward_matrix():
    """One runner sweep over the full forward grid; returns
    ``{victim: {scheme: [signal kinds]}}`` plus the summaries."""
    specs = sweep_grid(FORWARD_VICTIMS, ALL_SCHEMES, max_cycles=40_000)
    outcomes = with_runner(lambda runner: runner.run_outcomes(specs))
    assert all(o.ok for o in outcomes), [o.status for o in outcomes if not o.ok]
    by_cell = {}
    for spec, outcome in zip(specs, outcomes):
        by_cell[(spec.victim, spec.scheme, spec.secret)] = outcome.summary
    matrix = {}
    for victim in FORWARD_VICTIMS:
        vspec = victim_by_name(victim)
        matrix[victim] = {
            scheme: [
                s.kind
                for s in summary_signals(
                    vspec,
                    by_cell[(victim, scheme, 0)],
                    by_cell[(victim, scheme, 1)],
                )
            ]
            for scheme in ALL_SCHEMES
        }
    return matrix, by_cell


def format_forward_matrix(matrix):
    width = max(len(s) for s in ALL_SCHEMES)
    lines = [
        "Forward speculative interference matrix "
        "(X = secret-dependent timing of OLDER bound-to-retire loads):",
        "",
        f"  {'scheme':<{width}}  " + "  ".join(f"{v:>8}" for v in FORWARD_VICTIMS),
    ]
    for scheme in ALL_SCHEMES:
        cells = []
        for victim in FORWARD_VICTIMS:
            kinds = matrix[victim][scheme]
            cells.append(f"{'X' if kinds else '.':>8}")
        lines.append(f"  {scheme:<{width}}  " + "  ".join(cells))
    return "\n".join(lines)


@pytest.mark.benchmark(group="forward")
def test_bench_forward_interference(benchmark):
    matrix, by_cell = benchmark.pedantic(
        run_forward_matrix, rounds=1, iterations=1
    )

    # -- receiver accuracy on every leaking cell -----------------------
    decode_lines = ["Receiver decode accuracy (leaking cells only):"]
    for victim in FORWARD_VICTIMS:
        vspec = victim_by_name(victim)
        for scheme in ALL_SCHEMES:
            if not matrix[victim][scheme]:
                continue
            receiver = ForwardReceiver.calibrate(vspec, scheme)
            decoded = {
                secret: receiver.decode(by_cell[(victim, scheme, secret)])
                for secret in (0, 1)
            }
            ok = decoded == {0: 0, 1: 1}
            decode_lines.append(
                f"  {victim:<9} {scheme:<22} decoded {decoded}"
                f" {'ok' if ok else 'WRONG'}"
            )
            assert ok, (victim, scheme, decoded)

    # -- three-way verification over the forward victims ---------------
    rows = reconcile_verdicts(list(FORWARD_VICTIMS), list(ALL_SCHEMES))
    table = render_reconciliation(rows)
    assert all(r.agrees for r in rows), [
        (r.victim, r.scheme, r.agreement) for r in rows if not r.agrees
    ]
    assert all(r.static_flagged for r in rows)

    report = "\n\n".join(
        [
            format_forward_matrix(matrix),
            "\n".join(decode_lines),
            "Three-way reconciliation (static x symbolic x dynamic):\n"
            + table,
        ]
    )
    emit_report("forward_interference", report)

    # -- headline pattern ----------------------------------------------
    def leaks(victim):
        return {s for s in ALL_SCHEMES if matrix[victim][s]}

    for victim in FORWARD_VICTIMS:
        # Forward interference breaks every invisible-speculation scheme
        # (and of course the unsafe baseline).
        assert {"unsafe", *INVISIBLE_SCHEMES} <= leaks(victim), victim
        # The classic defenses that DO block it: fences (nothing
        # speculative issues) and STT (tainted transmitters gated).
        assert not leaks(victim) & {"fence-spectre", "fence-futuristic"}
        assert "stt" not in leaks(victim)
        assert "priority" not in leaks(victim)
    # fwd-eu transmits via EU time, not addresses: delay-on-miss does
    # not help.  fwd-mshr transmits via miss requests: it does.
    assert "dom-nontso" in leaks("fwd-eu")
    assert "dom-nontso" not in leaks("fwd-mshr")
    # Value prediction kills the RS channel (predicted miss drains the
    # swarm identically in both runs) but not the EU-latency channel.
    assert "dom-nontso-vp" in leaks("fwd-eu")
    assert "dom-nontso-vp" not in leaks("fwd-rs")
