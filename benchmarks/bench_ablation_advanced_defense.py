"""Ablation (§5.4): the advanced priority-scheduling defense.

DESIGN.md calls out two design choices in the advanced defense —
resource holding (rule 1) and age-priority/preemptable EUs (rule 2).
This bench measures (a) whether the combined defense blocks the GDNPEU
reorder and (b) its performance cost relative to its DoM base scheme,
and contrasts it with the much blunter fence defense.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.core.experiments import ablation_advanced_defense, fig12_defense_overhead
from repro.core.harness import run_victim_trial
from repro.core.victims import gdnpeu_victim
from repro.schemes import DelayOnMiss, PriorityDefense


from _common import emit_report


def run_ablation():
    result = ablation_advanced_defense()
    fence = fig12_defense_overhead(
        schemes=("fence-spectre",), baseline="dom-nontso"
    )
    # security check for the base scheme (vulnerable) vs defense (not)
    spec = gdnpeu_victim()
    base_orders = [
        run_victim_trial(spec, DelayOnMiss("nontso"), s).order(
            spec.line_a, spec.line_b
        )
        for s in (0, 1)
    ]
    defense_orders = [
        run_victim_trial(spec, PriorityDefense(), s).order(spec.line_a, spec.line_b)
        for s in (0, 1)
    ]
    return result, fence, base_orders, defense_orders


@pytest.mark.benchmark(group="ablation")
def test_bench_ablation_advanced_defense(benchmark):
    result, fence, base_orders, defense_orders = benchmark.pedantic(
        run_ablation, rounds=1, iterations=1
    )
    rows = []
    for row in result.overhead.rows:
        fence_row = next(r for r in fence.rows if r.workload == row.workload)
        rows.append(
            [
                row.workload,
                f"{row.slowdown('priority'):.2f}x",
                f"{fence_row.slowdown('fence-spectre'):.2f}x",
            ]
        )
    rows.append(
        [
            "GEOMEAN",
            f"{result.overhead.geomean('priority'):.2f}x",
            f"{fence.geomean('fence-spectre'):.2f}x",
        ]
    )
    text = format_table(
        ["workload", "priority defense (§5.4)", "fence defense (§5.2)"],
        rows,
        title="Ablation: advanced defense cost over a DoM baseline",
        align_right=[1, 2],
    )
    text += (
        f"\n\nGDNPEU order(A,B) under DoM:      s0={base_orders[0]} "
        f"s1={base_orders[1]}  (leaks: {base_orders[0] != base_orders[1]})"
        f"\nGDNPEU order(A,B) under priority:  s0={defense_orders[0]} "
        f"s1={defense_orders[1]}  (leaks: {defense_orders[0] != defense_orders[1]})"
    )
    emit_report("ablation_advanced_defense", text)
    assert result.blocks_gdnpeu
    assert base_orders[0] != base_orders[1]
    assert defense_orders[0] == defense_orders[1]
