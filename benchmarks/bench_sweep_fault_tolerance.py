"""Fault-tolerant sweep smoke: the acceptance scenario, measured.

Runs one mixed sweep through the injection harness — a permanently
deadlocking trial, a single-shot worker kill, and a mid-sweep
interruption with journal resume — and reports what the resilience layer
did: which trial failed (as data), what got retried, how many trials the
resume skipped, and that every surviving summary is bit-identical to a
fault-free reference.
"""

import tempfile
import os

import pytest

from repro.runner import (
    FaultPlan,
    FaultSpec,
    ParallelSweepRunner,
    SerialSweepRunner,
    TrialJournal,
)
from repro.runner import faults

from _common import SWEEP_VICTIMS as VICTIMS
from _common import emit_report, sweep_grid

SCHEMES = ["dom-nontso", "invisispec-spectre", "fence-spectre"]

PLAN = FaultPlan((
    FaultSpec("deadlock", victim="gdnpeu", scheme="dom-nontso",
              secret=1, at_cycle=100, max_attempts=99),
    FaultSpec("worker-kill", victim="gdmshr", scheme="fence-spectre",
              secret=0, max_attempts=1),
))


def faulted_resumed_sweep():
    specs = sweep_grid(VICTIMS, SCHEMES)
    reference = SerialSweepRunner().run(specs)
    journal = TrialJournal(os.path.join(tempfile.mkdtemp(), "sweep.jsonl"))
    faults.install_plan(PLAN)
    try:
        with ParallelSweepRunner(2, chunksize=1) as runner:
            runner.run(specs[: len(specs) // 2], journal=journal)
        checkpointed = len(journal)
        with ParallelSweepRunner(2, chunksize=1) as runner:
            result = runner.run(specs, journal=journal)
    finally:
        faults.clear_plan()
    return specs, reference, checkpointed, result


@pytest.mark.benchmark(group="fault-tolerance")
def test_bench_sweep_fault_tolerance(benchmark):
    specs, reference, checkpointed, result = benchmark.pedantic(
        faulted_resumed_sweep, rounds=1, iterations=1
    )
    retried = [o for o in result.outcomes if o.ok and o.attempts > 1]
    lines = [
        "Fault-tolerant sweep smoke (deadlock + worker kill + resume)",
        f"  grid:          {len(specs)} trials "
        f"({len(VICTIMS)} victims x {len(SCHEMES)} schemes x 2 secrets)",
        f"  checkpointed:  {checkpointed} trials before the 'interrupt'",
        f"  resumed:       {len(result)} ok / {len(result.failures)} failed",
        f"  retried ok:    {len(retried)} trials "
        f"(max attempts {max((o.attempts for o in result.outcomes), default=0)})",
        "",
        "Failures (structured records, not crashes):",
    ]
    lines += [f"  {f.describe()}" for f in result.failures]
    emit_report("sweep_fault_tolerance", "\n".join(lines))

    # The deadlock is the only failure, and it is attributable.
    assert [f.status.value for f in result.failures] == ["deadlock"]
    assert "victim=" in result.failures[0].error_message
    # The killed worker's trial converged via retry.
    kill = next(o for o in result.outcomes
                if (o.victim, o.scheme, o.secret) == ("gdmshr", "fence-spectre", 0))
    assert kill.ok and kill.attempts >= 2
    # Every surviving summary is bit-identical to the fault-free run.
    expected = [s for s in reference
                if (s.victim, s.scheme, s.secret) != ("gdnpeu", "dom-nontso", 1)]
    assert result.succeeded() == expected
