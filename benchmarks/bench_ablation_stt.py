"""Ablation (§6): STT vs speculative interference.

The paper positions STT as the comprehensive-threat-model alternative:
"STT soundly blocks speculative interference attacks that leak
transiently accessed data, [but] offers no protection against
speculative interference attacks that leak non-transiently accessed
(bound-to-retire) data."  This bench verifies both halves and measures
STT's performance cost next to the other defenses.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.core.experiments import fig12_defense_overhead
from repro.core.harness import run_victim_trial
from repro.core.spectre import spectre_leak_trial
from repro.core.victims import (
    gdmshr_victim,
    gdnpeu_architectural_victim,
    gdnpeu_arith_victim,
    gdnpeu_victim,
    girs_victim,
)

from _common import emit_report


def leaks_order(spec, scheme):
    orders = [
        run_victim_trial(spec, scheme, s).order(spec.line_a, spec.line_b)
        for s in (0, 1)
    ]
    return orders[0] != orders[1]


def leaks_time(spec, scheme, line_getter):
    times = [
        run_victim_trial(spec, scheme, s).first_access(line_getter(spec))
        for s in (0, 1)
    ]
    if times[0] is None and times[1] is None:
        return False
    if (times[0] is None) != (times[1] is None):
        return True
    return abs(times[0] - times[1]) > 8


def run_ablation():
    security = [
        ("Spectre v1", spectre_leak_trial("stt", 7).leaked),
        ("GDNPEU, transient load tx", leaks_order(gdnpeu_victim(), "stt")),
        ("GDNPEU, transient arith tx", leaks_order(gdnpeu_arith_victim(), "stt")),
        (
            "GDMSHR, transient",
            leaks_time(gdmshr_victim(), "stt", lambda s: s.line_a),
        ),
        (
            "GIRS, transient",
            leaks_time(girs_victim(), "stt", lambda s: s.target_iline),
        ),
        (
            "GDNPEU, bound-to-retire secret",
            leaks_order(gdnpeu_architectural_victim(), "stt"),
        ),
    ]
    overhead = fig12_defense_overhead(schemes=("stt", "fence-spectre"))
    return security, overhead


@pytest.mark.benchmark(group="ablation")
def test_bench_ablation_stt(benchmark):
    security, overhead = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = [[name, "LEAKS" if leaks else "blocked"] for name, leaks in security]
    text = format_table(
        ["attack vs STT", "verdict"],
        rows,
        title="STT ablation (§6): taint tracking vs speculative interference",
    )
    perf_rows = [
        [row.workload, f"{row.slowdown('stt'):.2f}x", f"{row.slowdown('fence-spectre'):.2f}x"]
        for row in overhead.rows
    ]
    perf_rows.append(
        [
            "GEOMEAN",
            f"{overhead.geomean('stt'):.2f}x",
            f"{overhead.geomean('fence-spectre'):.2f}x",
        ]
    )
    text += "\n\n" + format_table(
        ["workload", "stt", "fence-spectre"],
        perf_rows,
        title="Overhead over the unsafe baseline",
        align_right=[1, 2],
    )
    emit_report("ablation_stt", text)
    verdicts = dict(security)
    assert not verdicts["Spectre v1"]
    assert not verdicts["GDNPEU, transient load tx"]
    assert not verdicts["GDNPEU, transient arith tx"]
    assert not verdicts["GDMSHR, transient"]
    assert not verdicts["GIRS, transient"]
    # ... and the paper's counter-example:
    assert verdicts["GDNPEU, bound-to-retire secret"]
    # STT is cheaper than blanket fencing on branch-dense code
    assert overhead.geomean("stt") <= overhead.geomean("fence-spectre") + 0.05
