"""Figure 11(a): D-cache PoC channel — error probability vs bit rate.

Sweeps the per-bit repetition count of the GDNPEU + QLRU-receiver attack
under injected LLC noise and DRAM jitter.  Paper shape: error falls as
the bit rate drops (more repetitions); the D-cache channel tops out
around ~200 bps on real hardware.  Absolute rates differ (our receiver
overheads are idealized); the monotone tradeoff is the reproduced shape.
"""

from dataclasses import replace

import pytest

from repro.core.attack import DCacheAttack
from repro.core.channel import evaluate_channel, format_channel_curve
from repro.core.victims import ATTACK_HIERARCHY

from _common import emit_report

NOISE = 0.0005
BITS = 32
REPS = (1, 3, 5)


def run_channel():
    hier = replace(ATTACK_HIERARCHY, dram_jitter=10)
    attack = DCacheAttack(
        "dom-nontso", hierarchy_config=hier, noise_rate=NOISE, seed=42
    )
    return evaluate_channel(attack, num_bits=BITS, repetitions=REPS, seed=7)


@pytest.mark.benchmark(group="fig11")
def test_bench_fig11a_dcache_channel(benchmark):
    points = benchmark.pedantic(run_channel, rounds=1, iterations=1)
    text = format_channel_curve(
        points,
        "Figure 11(a): D-cache PoC channel error vs bit rate "
        f"(GDNPEU + QLRU receiver, DoM, noise={NOISE}/cycle)",
    )
    emit_report("fig11a_dcache_channel", text)
    # shape: more repetitions -> lower rate; error at max repetitions is
    # no worse than at minimum repetitions (majority voting helps)
    assert points[0].cycles_per_bit < points[-1].cycles_per_bit
    assert points[-1].error_rate <= points[0].error_rate
    assert points[0].error_rate < 0.5  # a real channel, not a coin flip
