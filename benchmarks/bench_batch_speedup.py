"""Batched lockstep sweep speedup (not a paper figure).

The reference-schedule sweep is the shape the §3.3 interference
experiments actually run — the same victim probed with the attacker's
"clock" read placed at many different cycles — and it is exactly the
dimension the snapshot-fork engine cannot merge (its group key keeps
the schedule, so every schedule becomes its own fork group).  The
batched SoA engine simulates the whole sweep as one leader run per
secret with every schedule as a follower lane, so it must come in
>=2x faster than the scalar fork path — with bit-identical outcomes
(asserted; tests/batch proves the same per scheme).
"""

import pytest

from repro.core.victims import ADDR_REF
from repro.runner import SerialSweepRunner

from _common import emit_report, sweep_grid, timed_outcomes

#: 16 placements of the attacker's reference read, spanning the whole
#: speculation window of the gdnpeu victim under DoM.
REF_CYCLES = tuple(range(40, 360, 20))


def _specs():
    return [
        spec
        for cycle in REF_CYCLES
        for spec in sweep_grid(
            ["gdnpeu"],
            ["dom-nontso"],
            reference_accesses=((ADDR_REF, cycle),),
        )
    ]


@pytest.mark.benchmark(group="batch")
def test_bench_batch_speedup(benchmark, tmp_path):
    pytest.importorskip("numpy")
    specs = _specs()

    def measure():
        cold, cold_t = timed_outcomes(SerialSweepRunner(), specs)
        forked, fork_t = timed_outcomes(SerialSweepRunner(fork=True), specs)
        assert forked == cold
        batched, batch_t = timed_outcomes(
            SerialSweepRunner(fork=True, batch=True), specs
        )
        assert batched == cold  # bit-identical, not just statistically alike
        return cold_t, fork_t, batch_t

    cold_t, fork_t, batch_t = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    batch_x = fork_t / batch_t
    emit_report(
        "batch_speedup",
        "\n".join(
            [
                "Batched lockstep (SoA) sweep speedup "
                f"({len(specs)} trials: gdnpeu x dom-nontso x 2 secrets "
                f"x {len(REF_CYCLES)} reference-read cycles; outcomes "
                "asserted bit-identical across all three paths):",
                f"  cold sweep:                 {cold_t:.2f} s",
                f"  fork=True sweep:            {fork_t:.2f} s  "
                f"({cold_t / fork_t:.2f}x over cold)",
                f"  fork+batch=True sweep:      {batch_t:.2f} s  "
                f"({batch_x:.2f}x over fork, budget >=2x; "
                f"{cold_t / batch_t:.2f}x over cold)",
                "",
                "Fork must simulate every distinct reference schedule "
                "separately (the schedule is part of its group key); "
                "batch runs one leader per secret and mirrors all "
                f"{len(REF_CYCLES)} schedules as SoA lanes in lockstep, "
                "ejecting any lane whose memory system diverges to the "
                "scalar cold path.",
            ]
        ),
    )
    assert batch_x >= 2.0
