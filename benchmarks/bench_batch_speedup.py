"""Batched lockstep sweep speedup (not a paper figure).

The reference-schedule sweep is the shape the §3.3 interference
experiments actually run — the same victim probed with the attacker's
"clock" read placed at many different cycles — and it is exactly the
dimension the snapshot-fork engine cannot merge (its group key keeps
the schedule, so every schedule becomes its own fork group).  The
batched SoA engine simulates the whole sweep as one leader run per
secret with every schedule as a follower lane, so it must come in
>=2x faster than the scalar fork path — with bit-identical outcomes
(asserted; tests/batch proves the same per scheme).

Two cases are measured: the stream-inert sweep, and the same sweep on a
DRAM-jittered hierarchy — the shape the widened core un-bypassed (the
mirror replays each lane's jitter from the per-lane counter stream).
The ``BENCH_batch_speedup.json`` artifact carries both speedups so CI
can gate on the >=2x floor without parsing prose.
"""

import pytest

from repro.core.victims import ADDR_REF
from repro.memory.hierarchy import HierarchyConfig
from repro.runner import SerialSweepRunner

from _common import emit_report, sweep_grid, timed_outcomes

#: 16 placements of the attacker's reference read, spanning the whole
#: speculation window of the gdnpeu victim under DoM.
REF_CYCLES = tuple(range(40, 360, 20))

#: The jittered case: every DRAM fill draws 0..5 extra cycles from the
#: per-(cycle, core) counter stream.
JITTERED = HierarchyConfig(dram_jitter=5)


def _specs(**common):
    return [
        spec
        for cycle in REF_CYCLES
        for spec in sweep_grid(
            ["gdnpeu"],
            ["dom-nontso"],
            reference_accesses=((ADDR_REF, cycle),),
            **common,
        )
    ]


def _measure_case(specs):
    cold, cold_t = timed_outcomes(SerialSweepRunner(), specs)
    forked, fork_t = timed_outcomes(SerialSweepRunner(fork=True), specs)
    assert forked == cold
    batched, batch_t = timed_outcomes(
        SerialSweepRunner(fork=True, batch=True), specs
    )
    assert batched == cold  # bit-identical, not just statistically alike
    return cold_t, fork_t, batch_t


def _case_lines(label, trials, cold_t, fork_t, batch_t):
    return [
        f"{label} ({trials} trials):",
        f"  cold sweep:                 {cold_t:.2f} s",
        f"  fork=True sweep:            {fork_t:.2f} s  "
        f"({cold_t / fork_t:.2f}x over cold)",
        f"  fork+batch=True sweep:      {batch_t:.2f} s  "
        f"({fork_t / batch_t:.2f}x over fork, budget >=2x; "
        f"{cold_t / batch_t:.2f}x over cold)",
    ]


def _case_json(trials, cold_t, fork_t, batch_t):
    return {
        "trials": trials,
        "cold_s": round(cold_t, 4),
        "fork_s": round(fork_t, 4),
        "batch_s": round(batch_t, 4),
        "speedup_over_fork": round(fork_t / batch_t, 4),
        "speedup_over_cold": round(cold_t / batch_t, 4),
    }


@pytest.mark.benchmark(group="batch")
def test_bench_batch_speedup(benchmark, tmp_path):
    pytest.importorskip("numpy")
    plain = _specs()
    jittered = _specs(hierarchy_config=JITTERED)

    def measure():
        return _measure_case(plain), _measure_case(jittered)

    (plain_t, jitter_t) = benchmark.pedantic(measure, rounds=1, iterations=1)
    plain_x = plain_t[1] / plain_t[2]
    jitter_x = jitter_t[1] / jitter_t[2]
    emit_report(
        "batch_speedup",
        "\n".join(
            [
                "Batched lockstep (SoA) sweep speedup "
                "(gdnpeu x dom-nontso x 2 secrets "
                f"x {len(REF_CYCLES)} reference-read cycles; outcomes "
                "asserted bit-identical across all three paths):",
                *_case_lines("stream-inert sweep", len(plain), *plain_t),
                *_case_lines(
                    f"dram_jitter={JITTERED.dram_jitter} sweep",
                    len(jittered),
                    *jitter_t,
                ),
                "",
                "Fork must simulate every distinct reference schedule "
                "separately (the schedule is part of its group key); "
                "batch runs one leader per secret and mirrors all "
                f"{len(REF_CYCLES)} schedules as SoA lanes in lockstep, "
                "ejecting any lane whose memory system diverges to the "
                "scalar cold path.  The jittered case replays each "
                "lane's DRAM jitter from the per-lane counter stream "
                "instead of bypassing the mirror.",
            ]
        ),
        data={
            "budget_min_speedup_over_fork": 2.0,
            "ref_cycles": len(REF_CYCLES),
            "cases": {
                "plain": _case_json(len(plain), *plain_t),
                "jittered": _case_json(len(jittered), *jitter_t),
            },
        },
    )
    assert plain_x >= 2.0
    assert jitter_x >= 2.0
