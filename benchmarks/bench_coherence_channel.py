"""Extension bench: the coherence-invalidation interference channel.

A retirement-bound store's retire time carries the interference signal;
the MESI invalidation it sends is the receiver's observable.  Reports
the store-retire shift per scheme and the end-to-end bit accuracy —
a third receiver family (after replacement-state and Flush+Reload) for
the same GDNPEU primitive.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.core.harness import ATTACKER_CORE, prepare_machine
from repro.core.victims import gdnpeu_store_victim
from repro.system.agent import AttackerAgent

from _common import emit_report

SCHEMES = [
    "dom-nontso",
    "invisispec-spectre",
    "safespec-wfb",
    "muontrap",
    "condspec",
    "stt",
    "fence-spectre",
]


def store_retire_time(scheme, secret):
    spec = gdnpeu_store_victim()
    machine, core, _ = prepare_machine(spec, scheme, secret, trace=True)
    machine.run(until=lambda: core.halted, max_cycles=30_000)
    store = next(i for i in core.trace if i.name == "store A")
    return store.events["retire"]


def decode_bit(scheme, secret, probe_cycle):
    spec = gdnpeu_store_victim()
    machine, core, _ = prepare_machine(spec, scheme, secret)
    agent = AttackerAgent(machine, ATTACKER_CORE)
    agent.read(spec.line_a)
    agent.schedule_timed_read(spec.line_a, probe_cycle)
    machine.run(until=lambda: core.halted, max_cycles=30_000)
    observation = agent.scheduled_observations[0]
    l1_threshold = machine.hierarchy.config.l1d.latency + 2
    return 1 if observation.latency <= l1_threshold else 0


def run_sweep():
    rows = []
    for scheme in SCHEMES:
        t0 = store_retire_time(scheme, 0)
        t1 = store_retire_time(scheme, 1)
        if abs(t1 - t0) < 8:
            rows.append((scheme, t0, t1, None))
            continue
        probe = (t0 + t1) // 2
        correct = sum(
            decode_bit(scheme, bit, probe) == bit for bit in (0, 1, 1, 0, 0, 1)
        )
        rows.append((scheme, t0, t1, correct / 6))
    return rows


@pytest.mark.benchmark(group="coherence")
def test_bench_coherence_channel(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = [
        [
            scheme,
            t0,
            t1,
            "no signal" if acc is None else f"{acc:.2f}",
        ]
        for scheme, t0, t1, acc in rows
    ]
    text = format_table(
        ["scheme", "store retire (s=0)", "store retire (s=1)", "bit accuracy"],
        table,
        title=(
            "Coherence-invalidation channel: GDNPEU delaying a\n"
            "retirement-bound store; receiver probes its own cached copy"
        ),
        align_right=[1, 2, 3],
    )
    emit_report("coherence_channel", text)
    verdict = {scheme: acc for scheme, _, _, acc in rows}
    for scheme in ("dom-nontso", "invisispec-spectre", "safespec-wfb",
                   "muontrap", "condspec"):
        assert verdict[scheme] == 1.0, scheme
    assert verdict["fence-spectre"] is None
    # STT blocks this victim: its secret is *transiently* accessed, so
    # the tainted transmitter never launches the gadget.  (The
    # bound-to-retire-secret variant evades STT — see the STT ablation.)
    assert verdict["stt"] is None
