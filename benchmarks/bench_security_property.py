"""§5.1 security property sweep: C(E) = C(NoSpec(E)) per scheme.

For every scheme and every gadget victim, checks whether the visible
shared-LLC access pattern — including a calibrated fixed-time attacker
reference access, since C(E) interleaves all cores — is invariant of
mis-speculation.  The paper's thesis in one table: the property fails
for every invisible-speculation scheme on at least one interference
victim, and holds for the fence defenses on all of them.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.core.harness import run_victim_trial
from repro.core.noninterference import check_ideal_invisible_speculation
from repro.core.victims import (
    ADDR_REF,
    gdmshr_victim,
    gdnpeu_architectural_victim,
    gdnpeu_victim,
    girs_victim,
)

from _common import emit_report

SCHEMES = [
    "unsafe",
    "invisispec-spectre",
    "invisispec-futuristic",
    "dom-nontso",
    "dom-tso",
    "safespec-wfb",
    "safespec-wfc",
    "muontrap",
    "condspec",
    "cleanupspec",
    "stt",
    "fence-spectre",
    "fence-futuristic",
]

#: victims paired with the line whose access time calibrates the
#: attacker's reference access (None for GIRS: presence channel).
VICTIMS = [
    ("gdnpeu", lambda: gdnpeu_victim(variant="vd-vd")),
    ("gdmshr", lambda: gdmshr_victim(variant="vd-vd")),
    ("girs", girs_victim),
    # bound-to-retire secret: the STT counter-example (§6)
    ("gdnpeu-arch", gdnpeu_architectural_victim),
]


def calibrated_reference(spec, scheme):
    """The attacker's offline calibration: find the monitored access's
    time under both secrets and place the reference between them."""
    line = spec.line_a if spec.line_a is not None else spec.target_iline
    t0 = run_victim_trial(spec, scheme, 0).first_access(line)
    t1 = run_victim_trial(spec, scheme, 1).first_access(line)
    if t0 is None or t1 is None or abs(t0 - t1) < 4:
        return ()
    return ((ADDR_REF, (t0 + t1) // 2),)


def run_sweep():
    table = {}
    for scheme in SCHEMES:
        row = {}
        for name, builder in VICTIMS:
            spec = builder()
            refs = calibrated_reference(spec, scheme)
            holds = all(
                check_ideal_invisible_speculation(
                    builder(), scheme, s, reference_accesses=refs
                ).holds
                for s in (0, 1)
            )
            row[name] = holds
        table[scheme] = row
    return table


@pytest.mark.benchmark(group="security")
def test_bench_security_property(benchmark):
    table = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [
        [scheme] + ["holds" if table[scheme][v] else "VIOLATED" for v, _ in VICTIMS]
        for scheme in SCHEMES
    ]
    text = format_table(
        ["scheme"] + [v for v, _ in VICTIMS],
        rows,
        title=(
            "Ideal invisible speculation: C(E) = C(NoSpec(E)) per victim\n"
            "(C(E) includes a calibrated fixed-time attacker reference access)"
        ),
    )
    emit_report("security_property", text)
    # fences satisfy the property on every victim ...
    for scheme in ("fence-spectre", "fence-futuristic"):
        assert all(table[scheme].values())
    # ... STT holds exactly on the transient-secret victims (§6) ...
    assert table["stt"]["gdnpeu"] and table["stt"]["gdmshr"] and table["stt"]["girs"]
    assert not table["stt"]["gdnpeu-arch"]
    # ... and every invisible-speculation scheme fails somewhere.
    for scheme in SCHEMES:
        if scheme.startswith("fence") or scheme == "stt":
            continue
        assert not all(table[scheme].values()), scheme
