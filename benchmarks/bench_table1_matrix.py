"""Table 1: invisible-speculation vulnerability matrix.

Regenerates the paper's Table 1 by running every (gadget, ordering,
scheme) attack cell and reporting which schemes show secret-dependent
ordering of unprotected LLC accesses.

Expected pattern (paper Table 1):
  GDNPEU  VD-VD: InvisiSpec(Spectre), DoM(non-TSO), SafeSpec(WFB)
          VD-AD, VI-AD: all invisible-speculation schemes
  GDMSHR  VD-VD: InvisiSpec(Spectre), SafeSpec(WFB)
          VD-AD, VI-AD: InvisiSpec, SafeSpec, MuonTrap
  GIRS    VI-AD: InvisiSpec, DoM
Fence defenses (not in the paper's table): invulnerable everywhere.
"""

import pytest

from repro.core.matrix import format_matrix, run_matrix

from _common import emit_report, with_runner


def build_matrix():
    cells = with_runner(lambda runner: run_matrix(runner=runner))
    vulnerable = [c for c in cells if c.vulnerable]
    return cells, vulnerable


@pytest.mark.benchmark(group="table1")
def test_bench_table1_matrix(benchmark):
    cells, vulnerable = benchmark.pedantic(build_matrix, rounds=1, iterations=1)
    lines = [format_matrix(cells), "", "Per-cell detail (vulnerable cells):"]
    for cell in vulnerable:
        lines.append(
            f"  {cell.gadget:8s} {cell.ordering:6s} {cell.scheme:24s} "
            f"t0={cell.t_secret0} t1={cell.t_secret1}  {cell.detail}"
        )
    emit_report("table1_matrix", "\n".join(lines))
    # sanity: the headline pattern of Table 1
    def vuln(g, o):
        return {c.scheme for c in vulnerable if c.gadget == g and c.ordering == o}

    assert vuln("gdnpeu", "vd-vd") == {
        "invisispec-spectre",
        "dom-nontso",
        "safespec-wfb",
    }
    assert vuln("gdmshr", "vd-vd") == {"invisispec-spectre", "safespec-wfb"}
    assert vuln("girs", "vi-ad") == {
        "invisispec-spectre",
        "invisispec-futuristic",
        "dom-nontso",
        "dom-tso",
    }
    assert not any(c.scheme.startswith("fence") for c in vulnerable)
