"""Figures 3, 4, 5: attack timelines.

Renders the pipeline event timelines of the three gadgets, secret=0 vs
secret=1, reproducing the timeline panels of Figures 3(b), 4(b), 5(b):
the GDNPEU cascade on the non-pipelined unit, the MSHR-blocked victim
load, and the frozen frontend of GIRS.
"""

import pytest

from repro.analysis.timeline import render_timeline, timeline_rows
from repro.core.harness import run_victim_trial
from repro.core.victims import gdmshr_victim, gdnpeu_victim, girs_victim

from _common import emit_report

CASES = [
    (
        "fig3_gdnpeu",
        gdnpeu_victim,
        {},
        "dom-nontso",
        ["z", "f", "load A", "g10", "load B", "access", "transmitter", "gadget"],
    ),
    (
        "fig4_gdmshr",
        gdmshr_victim,
        {},
        "invisispec-spectre",
        ["z", "load A", "load B", "access", "mshr"],
    ),
    (
        "fig5_girs",
        girs_victim,
        {},
        "dom-nontso",
        ["chase0", "access", "transmitter", "rs add", "target instr"],
    ),
]


def run_timelines():
    reports = {}
    for name, builder, kwargs, scheme, names in CASES:
        spec = builder(**kwargs)
        sections = []
        for secret in (0, 1):
            result = run_victim_trial(spec, scheme, secret, trace=True)
            rows = timeline_rows(result.core, names=names)
            # keep the view readable: cap the RS-add swarm
            trimmed, adds = [], 0
            for row in rows:
                if row.name == "rs add":
                    adds += 1
                    if adds > 6:
                        continue
                trimmed.append(row)
            sections.append(
                render_timeline(
                    trimmed,
                    title=f"--- {spec.name} under {scheme}, secret={secret} ---",
                )
            )
        reports[name] = "\n\n".join(sections)
    return reports


@pytest.mark.benchmark(group="timelines")
def test_bench_fig345_timelines(benchmark):
    reports = benchmark.pedantic(run_timelines, rounds=1, iterations=1)
    for name, text in reports.items():
        emit_report(name, text)
    assert set(reports) == {"fig3_gdnpeu", "fig4_gdmshr", "fig5_girs"}
    for text in reports.values():
        assert "secret=0" in text and "secret=1" in text
