"""Figure 11(b): I-cache PoC channel — error probability vs bit rate.

Same sweep as Figure 11(a) for the GIRS + Flush+Reload attack.  Paper
shape: the I-cache channel is the faster of the two (e.g., 465 bps at
0.2 error on their hardware; AES-128 key in under 0.3 s at 80% accuracy).
"""

from dataclasses import replace

import pytest

from repro.core.attack import ICacheAttack
from repro.core.channel import evaluate_channel, format_channel_curve
from repro.core.victims import ATTACK_HIERARCHY

from _common import emit_report

NOISE = 0.1
BITS = 24
REPS = (1, 2, 3, 5)


def run_channel():
    hier = replace(ATTACK_HIERARCHY, dram_jitter=10)
    attack = ICacheAttack(
        "dom-nontso", hierarchy_config=hier, noise_rate=NOISE, seed=42
    )
    return evaluate_channel(attack, num_bits=BITS, repetitions=REPS, seed=7)


def aes_key_estimate(point):
    """Cycles to move a 128-bit key at this operating point."""
    return 128 * point.cycles_per_bit


@pytest.mark.benchmark(group="fig11")
def test_bench_fig11b_icache_channel(benchmark):
    points = benchmark.pedantic(run_channel, rounds=1, iterations=1)
    text = format_channel_curve(
        points,
        "Figure 11(b): I-cache PoC channel error vs bit rate "
        f"(GIRS + Flush+Reload, DoM, noise={NOISE}/cycle)",
    )
    best = min(points, key=lambda p: p.error_rate)
    text += (
        f"\n\nAES-128 key exfiltration at reps={best.repetitions}: "
        f"{aes_key_estimate(best):,.0f} cycles "
        f"({aes_key_estimate(best)/3.6e9*1000:.2f} ms at 3.6 GHz; "
        f"paper: <0.3 s at 80% accuracy)"
    )
    emit_report("fig11b_icache_channel", text)
    assert points[0].cycles_per_bit < points[-1].cycles_per_bit
    assert points[-1].error_rate <= max(points[0].error_rate, 0.25)
    # I-cache channel is faster than the D-cache channel (paper Fig. 11)
    assert points[0].cycles_per_bit < 5_000
