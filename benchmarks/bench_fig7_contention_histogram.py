"""Figure 7: interference-gadget contention histogram.

The time from the first f(z) instruction issuing to load A completing,
with and without the interference gadget (secret 1/0), over jittered
trials.  Paper: two modes ~80 rdtsc cycles apart on a Kaby Lake; here
the separation is the gadget's extra non-pipelined-EU occupancy.
"""

import pytest

from repro.analysis.histogram import ascii_histogram
from repro.core.experiments import fig7_contention_histogram

from _common import emit_report

TRIALS = 150


def run_fig7():
    return fig7_contention_histogram(trials=TRIALS, dram_jitter=25)


@pytest.mark.benchmark(group="fig7")
def test_bench_fig7_contention_histogram(benchmark):
    hists = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    base, interf = hists["baseline"], hists["interference"]
    text = ascii_histogram(
        hists,
        bin_width=4,
        title=(
            "Figure 7: interference target execution time "
            "(baseline=no gadget, interference=gadget active)"
        ),
    )
    text += (
        f"\n\nseparation of means: {interf.mean - base.mean:.1f} cycles"
        f"  (paper: ~80 rdtsc cycles / ~16 clock-thread ticks)"
    )
    emit_report("fig7_contention_histogram", text)
    assert base.count == interf.count == TRIALS
    assert interf.mean - base.mean > 20
    # the two distributions are separable (the attack's premise)
    assert base.percentile(95) < interf.percentile(5)
