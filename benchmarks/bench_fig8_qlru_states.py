"""Figure 8: QLRU state walk of the replacement-state receiver.

Replays the §4.2.2 prime -> victim(A-B / B-A) -> probe protocol against
one 16-way QLRU_H11_M1_R0_U0 set and prints the per-way (line, age)
state after each phase — the reproduction of Figure 8(a)-(c).
"""

import pytest

from repro.memory.cache import Cache

from _common import emit_report

WAYS = 16
LINE = 64


def addr(i):
    return i * LINE


def label_for(line, names):
    return names.get(line, "?")


def render_state(cache, names, phase):
    contents = cache.set_contents(0)
    ages = cache.set_policy_state(0)
    row_lines = "  ".join(f"{label_for(l, names):>5s}" for l in contents)
    row_ages = "  ".join(f"{a:>5d}" for a in ages)
    return f"{phase}\n  line: {row_lines}\n  age : {row_ages}"


def run_protocol(order):
    cache = Cache("llc-set", num_sets=1, num_ways=WAYS, policy="qlru")
    evs1 = [addr(i) for i in range(WAYS - 1)]
    evs2 = [addr(100 + i) for i in range(WAYS - 1)]
    a, b = addr(50), addr(51)
    names = {line: f"EV{i}" for i, line in enumerate(evs1)}
    names.update({line: f"EV{15 + i}" for i, line in enumerate(evs2)})
    names[a], names[b] = "A", "B"

    def access(line):
        if not cache.access(line):
            cache.fill(line)

    states = []
    for _ in range(4):
        for line in evs1:
            access(line)
    access(a)
    states.append(render_state(cache, names, "(a) after prime (EVS1 x4 + A)"))
    for line in order(a, b):
        access(line)
    tag = "A-B" if order(a, b) == (a, b) else "B-A"
    states.append(render_state(cache, names, f"(b) after victim access {tag}"))
    for line in evs2:
        access(line)
    states.append(render_state(cache, names, "(c) after probe (EVS2)"))
    resident = set(cache.set_contents(0))
    return states, (a in resident, b in resident)


@pytest.mark.benchmark(group="fig8")
def test_bench_fig8_qlru_states(benchmark):
    def both():
        return run_protocol(lambda a, b: (a, b)), run_protocol(lambda a, b: (b, a))

    (ab_states, ab_res), (ba_states, ba_res) = benchmark.pedantic(
        both, rounds=1, iterations=1
    )
    text = "Figure 8: QLRU_H11_M1_R0_U0 state walk (16-way LLC set)\n\n"
    text += "=== victim order A-B (secret 0) ===\n"
    text += "\n".join(ab_states)
    text += f"\n  => A resident: {ab_res[0]}, B resident: {ab_res[1]}\n\n"
    text += "=== victim order B-A (secret 1) ===\n"
    text += "\n".join(ba_states)
    text += f"\n  => A resident: {ba_res[0]}, B resident: {ba_res[1]}\n\n"
    text += "decoding rule: A resident <=> victim issued B-A (secret 1)"
    emit_report("fig8_qlru_states", text)
    assert ab_res == (False, True)
    assert ba_res == (True, False)
