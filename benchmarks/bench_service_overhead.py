"""Service-tier overhead: supervised daemon vs. direct in-process run.

The supervised service buys durability (journal fsync per trial,
durable cache publishes, lease heartbeats, queue/stream appends) and
crash recovery on top of the same deterministic trials.  This bench
measures what that costs end-to-end — same grid through (a) the serial
in-process runner, (b) the service with full durability, (c) the
service with journal fsync off — and asserts the results are
bit-identical across all three paths.

No wall-clock floor is asserted (CI runners are noisy); the acceptance
assertion is the bit-identity, the numbers are the report.
"""

import os
import tempfile
import time

import pytest

from repro.runner import SerialSweepRunner
from repro.runner.spec import expand_grid
from repro.service import ServiceClient, SweepSupervisor
from repro.service.codec import result_signature

from _common import emit_report

VICTIMS = ["gdnpeu", "gdmshr"]
SCHEMES = ["dom-nontso", "fence-spectre"]


def _service_run(specs, *, journal_fsync):
    service_dir = tempfile.mkdtemp(prefix="repro-svc-bench-")
    client = ServiceClient(service_dir)
    job_id = client.submit(specs)
    supervisor = SweepSupervisor(
        service_dir,
        workers=2,
        chunksize=4,
        poll_interval=0.005,
        journal_fsync=journal_fsync,
    )
    start = time.perf_counter()
    supervisor.run_until_idle(timeout=300.0)
    elapsed = time.perf_counter() - start
    return client.result(job_id), elapsed, service_dir


def service_overhead():
    specs = expand_grid(VICTIMS, SCHEMES)
    start = time.perf_counter()
    direct = SerialSweepRunner().run(specs)
    direct_s = time.perf_counter() - start
    durable, durable_s, _ = _service_run(specs, journal_fsync=True)
    fast, fast_s, _ = _service_run(specs, journal_fsync=False)
    return specs, (direct, direct_s), (durable, durable_s), (fast, fast_s)


@pytest.mark.benchmark(group="service")
def test_bench_service_overhead(benchmark):
    specs, direct, durable, fast = benchmark.pedantic(
        service_overhead, rounds=1, iterations=1
    )
    (direct_res, direct_s) = direct
    (durable_res, durable_s) = durable
    (fast_res, fast_s) = fast
    n = len(specs)

    def per_trial(seconds):
        return f"{seconds / n * 1e3:7.1f} ms/trial"

    lines = [
        "Service-tier overhead (same grid, three execution paths)",
        f"  grid:                {n} trials "
        f"({len(VICTIMS)} victims x {len(SCHEMES)} schemes x 2 secrets)",
        f"  direct serial:       {direct_s:6.2f} s  {per_trial(direct_s)}",
        f"  service (fsync on):  {durable_s:6.2f} s  {per_trial(durable_s)}"
        f"  ({durable_s / direct_s:4.1f}x direct)",
        f"  service (fsync off): {fast_s:6.2f} s  {per_trial(fast_s)}"
        f"  ({fast_s / direct_s:4.1f}x direct)",
        "",
        "The service path spawns real worker processes and pays a journal",
        "fsync per trial when durability is on; the overhead amortizes as",
        "trials grow and is the price of SIGKILL-anywhere recovery.",
    ]
    emit_report("service_overhead", "\n".join(lines))

    # Acceptance: all three paths produce the same result, bit-identical.
    reference = result_signature(direct_res.outcomes)
    assert result_signature(durable_res.outcomes) == reference
    assert result_signature(fast_res.outcomes) == reference
    assert not direct_res.failures


if __name__ == "__main__":
    specs, direct, durable, fast = service_overhead()
    print(
        f"direct={direct[1]:.2f}s durable={durable[1]:.2f}s "
        f"fast={fast[1]:.2f}s over {len(specs)} trials"
    )
