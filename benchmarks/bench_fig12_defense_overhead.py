"""Figure 12: performance of the basic fence defense (§5.3).

Runs the synthetic suite (the SPEC CPU2017 stand-in) under the unsafe
baseline and under the fence defense in the Spectre and Futuristic
threat models, and reports normalized execution time per workload plus
the geometric mean.

Paper: Spectre-model mean 1.58x, Futuristic-model mean 5.38x.  Expected
reproduced shape: Futuristic >> Spectre, both in the few-x band, with
branch-dense kernels hit by the Spectre fence and ILP/MLP kernels hit by
the Futuristic fence.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.core.experiments import fig12_defense_overhead

from _common import emit_report, with_runner

SCHEMES = ("fence-spectre", "fence-futuristic")


def run_fig12():
    # The (workload, scheme) grid fans out across processes when the host
    # has the cores for it; rows come back in the same order either way.
    return with_runner(
        lambda runner: fig12_defense_overhead(schemes=SCHEMES, runner=runner)
    )


@pytest.mark.benchmark(group="fig12")
def test_bench_fig12_defense_overhead(benchmark):
    report = benchmark.pedantic(run_fig12, rounds=1, iterations=1)
    rows = []
    for row in report.rows:
        rows.append(
            [
                row.workload,
                row.baseline_cycles,
                f"{row.slowdown('fence-spectre'):.2f}x",
                f"{row.slowdown('fence-futuristic'):.2f}x",
            ]
        )
    rows.append(
        [
            "GEOMEAN",
            "",
            f"{report.geomean('fence-spectre'):.2f}x",
            f"{report.geomean('fence-futuristic'):.2f}x",
        ]
    )
    text = format_table(
        ["workload", "baseline cycles", "fence-spectre", "fence-futuristic"],
        rows,
        title=(
            "Figure 12: basic defense overhead over the unsafe baseline\n"
            "(paper geomeans: Spectre 1.58x, Futuristic 5.38x)"
        ),
        align_right=[1, 2, 3],
    )
    emit_report("fig12_defense_overhead", text)
    gm_spectre = report.geomean("fence-spectre")
    gm_futur = report.geomean("fence-futuristic")
    assert gm_futur > gm_spectre  # the paper's headline ordering
    assert gm_spectre > 1.05      # the defense is not free
    for row in report.rows:
        assert row.slowdown("fence-futuristic") >= 0.99
