"""Ablation (§6): CleanupSpec vs speculative interference.

The paper's related-work claim, demonstrated end to end:

1. CleanupSpec blocks classic Spectre (rollback undoes squashed fills).
2. With *deterministic* LLC replacement, the standard D-cache
   interference PoC still works — the reordered loads A/B are
   non-speculative, so nothing rolls back.
3. With *randomized* LLC replacement (CleanupSpec's countermeasure),
   the QLRU replacement-state receiver decodes noise ...
4. ... but the paper's proposed W+1 occupancy sender re-establishes the
   channel — at a much higher per-bit cost ("makes its exploitation
   more challenging", quantified).
"""

import pytest

from repro.analysis.reporting import format_table
from repro.core.attack import (
    ATTACK_HIERARCHY_RANDOM_LLC,
    DCacheAttack,
    OccupancyAttack,
)
from repro.core.spectre import spectre_leak_trial

from _common import emit_report

BITS = (0, 1, 1, 0, 1, 0)


def accuracy(attack, bits=BITS):
    trials = [attack.send_bit(b) for b in bits]
    correct = sum(t.correct for t in trials)
    cycles = sum(t.cycles for t in trials) / len(trials)
    return correct / len(bits), cycles


def run_ablation():
    spectre_blocked = not spectre_leak_trial("cleanupspec", 7).leaked
    acc_qlru_det, cyc_det = accuracy(DCacheAttack("cleanupspec"))
    acc_qlru_rand, cyc_rand = accuracy(
        DCacheAttack("cleanupspec", hierarchy_config=ATTACK_HIERARCHY_RANDOM_LLC)
    )
    acc_occ, cyc_occ = accuracy(OccupancyAttack("cleanupspec", trials_per_bit=48))
    return spectre_blocked, [
        ("Spectre v1", "qlru", "blocked" if spectre_blocked else "LEAKS", "-"),
        ("GDNPEU + QLRU receiver", "qlru", f"{acc_qlru_det:.2f}", f"{cyc_det:,.0f}"),
        ("GDNPEU + QLRU receiver", "random", f"{acc_qlru_rand:.2f}", f"{cyc_rand:,.0f}"),
        ("W+1 occupancy sender", "random", f"{acc_occ:.2f}", f"{cyc_occ:,.0f}"),
    ], (acc_qlru_det, acc_qlru_rand, acc_occ)


@pytest.mark.benchmark(group="ablation")
def test_bench_ablation_cleanupspec(benchmark):
    spectre_blocked, rows, (det, rand, occ) = benchmark.pedantic(
        run_ablation, rounds=1, iterations=1
    )
    text = format_table(
        ["attack", "LLC policy", "bit accuracy", "cycles/bit"],
        rows,
        title="CleanupSpec ablation (§6): rollback + randomized replacement",
        align_right=[2, 3],
    )
    text += (
        "\n\nreading: rollback stops Spectre but not interference; "
        "randomizing replacement stops the QLRU receiver but the W+1 "
        "occupancy sender leaks anyway, ~50x more victim invocations/bit."
    )
    emit_report("ablation_cleanupspec", text)
    assert spectre_blocked
    assert det == 1.0          # interference beats rollback
    assert rand <= 0.5 + 1e-9  # randomized replacement kills QLRU decode
    assert occ == 1.0          # occupancy sender restores the channel
