"""Ablation: Delay-on-Miss with value prediction vs the gadget zoo.

DoM's full design (Sakalis et al.) pairs selective delay with *value
prediction* for speculative misses.  This bench maps which interference
transmitters survive:

* the hit/miss **load** transmitter dies — predicted misses return as
  fast as hits, erasing the timing differential;
* GDMSHR stays dead (predictions make no memory request at all);
* GIRS dies — the dependent adds get a (predicted) value either way, so
  the RS drains identically for both secrets;
* the **data-dependent arithmetic** transmitter still leaks — value
  prediction says nothing about operand-dependent execution time.

Plus the performance upside of VP over plain delay on the workload suite.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.core.experiments import fig12_defense_overhead
from repro.core.harness import run_victim_trial
from repro.core.victims import (
    gdmshr_victim,
    gdnpeu_arith_victim,
    gdnpeu_victim,
    girs_victim,
)

from _common import emit_report


def order_leak(spec, scheme):
    orders = [
        run_victim_trial(spec, scheme, s).order(spec.line_a, spec.line_b)
        for s in (0, 1)
    ]
    return orders[0] != orders[1] and None not in orders


def time_leak(spec, scheme, line_getter):
    times = [
        run_victim_trial(spec, scheme, s).first_access(line_getter(spec))
        for s in (0, 1)
    ]
    if (times[0] is None) != (times[1] is None):
        return True
    if times[0] is None:
        return False
    return abs(times[0] - times[1]) > 8


def run_ablation():
    rows = []
    for label, check in [
        ("GDNPEU, load transmitter", lambda s: order_leak(gdnpeu_victim(), s)),
        ("GDNPEU, arith transmitter", lambda s: order_leak(gdnpeu_arith_victim(), s)),
        ("GDMSHR", lambda s: time_leak(gdmshr_victim(), s, lambda v: v.line_a)),
        ("GIRS", lambda s: time_leak(girs_victim(), s, lambda v: v.target_iline)),
    ]:
        rows.append(
            (label, check("dom-nontso"), check("dom-nontso-vp"))
        )
    perf = fig12_defense_overhead(
        schemes=("dom-nontso", "dom-nontso-vp"), baseline="unsafe"
    )
    return rows, perf


@pytest.mark.benchmark(group="ablation")
def test_bench_ablation_dom_vp(benchmark):
    rows, perf = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    table_rows = [
        [label, "LEAKS" if plain else "blocked", "LEAKS" if vp else "blocked"]
        for label, plain, vp in rows
    ]
    text = format_table(
        ["attack", "dom (delay)", "dom (delay+VP)"],
        table_rows,
        title="DoM value-prediction ablation: which transmitters survive",
    )
    perf_rows = [
        [
            row.workload,
            f"{row.slowdown('dom-nontso'):.2f}x",
            f"{row.slowdown('dom-nontso-vp'):.2f}x",
        ]
        for row in perf.rows
    ]
    perf_rows.append(
        [
            "GEOMEAN",
            f"{perf.geomean('dom-nontso'):.2f}x",
            f"{perf.geomean('dom-nontso-vp'):.2f}x",
        ]
    )
    text += "\n\n" + format_table(
        ["workload", "dom (delay)", "dom (delay+VP)"],
        perf_rows,
        title="Overhead over the unsafe baseline",
        align_right=[1, 2],
    )
    emit_report("ablation_dom_vp", text)
    verdicts = {label: (plain, vp) for label, plain, vp in rows}
    assert verdicts["GDNPEU, load transmitter"] == (True, False)
    assert verdicts["GDNPEU, arith transmitter"] == (True, True)
    assert verdicts["GDMSHR"] == (False, False)
    assert verdicts["GIRS"][0] is True
    assert verdicts["GIRS"][1] is False
    # VP never slower than plain delay overall
    assert perf.geomean("dom-nontso-vp") <= perf.geomean("dom-nontso") + 0.02
