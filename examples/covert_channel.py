#!/usr/bin/env python3
"""Covert-channel demo: exfiltrate a message through invisible
speculation, and measure the error-rate/bit-rate tradeoff (Figure 11).

Transmits an ASCII string bit-by-bit with the D-cache (GDNPEU + QLRU
receiver) and I-cache (GIRS + Flush+Reload) PoCs, under injected noise,
then sweeps the repetition knob.

Run:  python examples/covert_channel.py
"""

from dataclasses import replace

from repro.core.attack import DCacheAttack, ICacheAttack
from repro.core.channel import evaluate_channel, format_channel_curve
from repro.core.victims import ATTACK_HIERARCHY

MESSAGE = "HI"


def to_bits(text):
    return [(ord(c) >> k) & 1 for c in text for k in range(7, -1, -1)]


def from_bits(bits):
    chars = []
    for i in range(0, len(bits) - 7, 8):
        value = 0
        for bit in bits[i : i + 8]:
            value = (value << 1) | (bit if bit is not None else 0)
        chars.append(chr(value))
    return "".join(chars)


def transmit(attack, label, repetitions=3):
    bits = to_bits(MESSAGE)
    received = [
        attack.send_bit_with_retries(bit, repetitions).received for bit in bits
    ]
    errors = sum(1 for s, r in zip(bits, received) if s != r)
    print(f"  [{label}] sent     : {MESSAGE!r} = {bits}")
    print(f"  [{label}] received : {from_bits(received)!r} = {received}")
    print(f"  [{label}] bit errors: {errors}/{len(bits)}\n")


def sweep(attack, label):
    points = evaluate_channel(attack, num_bits=16, repetitions=(1, 2, 3, 5), seed=3)
    print(format_channel_curve(points, f"{label}: error vs bit rate"))
    print()


def steal_aes_key():
    from repro.core.exfiltrate import exfiltrate_key

    print("=" * 72)
    print("AES-128 key exfiltration (paper: <0.3 s at 80% accuracy)")
    print("=" * 72)
    attack = ICacheAttack("invisispec-spectre")
    report = exfiltrate_key(attack, repetitions=1)
    print(f"  key sent:     {report.sent.hex()}")
    print(f"  key received: {report.received.hex()}")
    print(f"  {report.summary()}\n")


def main():
    hier = replace(ATTACK_HIERARCHY, dram_jitter=10)
    steal_aes_key()
    print("=" * 72)
    print("Covert channels through Delay-on-Miss (noise + jitter active)")
    print("=" * 72)
    transmit(
        DCacheAttack("dom-nontso", hierarchy_config=hier, noise_rate=0.0005, seed=1),
        "D-cache",
    )
    transmit(
        ICacheAttack("dom-nontso", hierarchy_config=hier, noise_rate=0.05, seed=1),
        "I-cache",
    )
    print("=" * 72)
    print("Figure 11 style sweeps")
    print("=" * 72)
    sweep(
        DCacheAttack("dom-nontso", hierarchy_config=hier, noise_rate=0.001, seed=2),
        "D-cache PoC",
    )
    sweep(
        ICacheAttack("dom-nontso", hierarchy_config=hier, noise_rate=0.1, seed=2),
        "I-cache PoC",
    )


if __name__ == "__main__":
    main()
