#!/usr/bin/env python3
"""Defense evaluation: security and cost of the paper's two defenses.

* §5.2 basic defense — automatic fences after squashable instructions
  (Spectre / Futuristic models): achieves ideal invisible speculation
  at a large performance cost (Figure 12).
* §5.4 advanced defense — resource holding + age-priority scheduling
  with preemptable non-pipelined units: blocks the interference channel
  at far lower cost.

Run:  python examples/defense_evaluation.py
"""

from repro.analysis.reporting import format_table
from repro.core.experiments import fig12_defense_overhead
from repro.core.harness import run_victim_trial
from repro.core.noninterference import check_ideal_invisible_speculation
from repro.core.victims import gdnpeu_victim
from repro.schemes import DelayOnMiss, PriorityDefense


def security_table():
    print("=" * 72)
    print("Security: does the GDNPEU attack still reorder loads A/B?")
    print("=" * 72)
    spec = gdnpeu_victim()
    rows = []
    for label, scheme in [
        ("dom-nontso (no defense)", lambda: DelayOnMiss("nontso")),
        ("fence-spectre", lambda: "fence-spectre"),
        ("fence-futuristic", lambda: "fence-futuristic"),
        ("priority (§5.4)", lambda: PriorityDefense()),
    ]:
        orders = [
            run_victim_trial(spec, scheme(), s).order(spec.line_a, spec.line_b)
            for s in (0, 1)
        ]
        leaks = orders[0] != orders[1]
        rows.append([label, orders[0], orders[1], "LEAKS" if leaks else "safe"])
    print(format_table(["scheme", "order(s=0)", "order(s=1)", "verdict"], rows))
    print()


def property_table():
    print("=" * 72)
    print("Ideal invisible speculation: C(E) = C(NoSpec(E))  (§5.1)")
    print("=" * 72)
    rows = []
    for scheme in ("dom-nontso", "fence-spectre", "fence-futuristic"):
        report = check_ideal_invisible_speculation(gdnpeu_victim(), scheme, 1)
        rows.append([scheme, "holds" if report.holds else "VIOLATED"])
    print(format_table(["scheme", "property"], rows))
    print()


def overhead_table():
    print("=" * 72)
    print("Cost (Figure 12): slowdown over the unsafe baseline")
    print("=" * 72)
    report = fig12_defense_overhead(
        schemes=("fence-spectre", "fence-futuristic", "priority")
    )
    rows = []
    for row in report.rows:
        rows.append(
            [row.workload]
            + [f"{row.slowdown(s):.2f}x" for s in report.schemes]
        )
    rows.append(
        ["GEOMEAN"] + [f"{report.geomean(s):.2f}x" for s in report.schemes]
    )
    print(
        format_table(
            ["workload"] + list(report.schemes), rows, align_right=[1, 2, 3]
        )
    )
    print("\npaper's geomeans for the fence defense: 1.58x (Spectre), "
          "5.38x (Futuristic)")


if __name__ == "__main__":
    security_table()
    property_table()
    overhead_table()
