#!/usr/bin/env python3
"""Visualize the interference cascades (Figures 3, 4, 5).

Renders ASCII pipeline timelines for each gadget, secret=0 vs secret=1,
so you can watch the gadget ops occupy the non-pipelined unit, the
MSHR-blocked victim load, and the frozen frontend.

Run:  python examples/pipeline_timelines.py
"""

from repro.analysis.timeline import render_timeline, timeline_rows
from repro.core.harness import run_victim_trial
from repro.core.victims import gdmshr_victim, gdnpeu_victim, girs_victim


def show(spec, scheme, names, caption):
    print("=" * 78)
    print(caption)
    print("=" * 78)
    for secret in (0, 1):
        result = run_victim_trial(spec, scheme, secret, trace=True)
        rows = timeline_rows(result.core, names=names)
        trimmed, adds = [], 0
        for row in rows:
            if row.name == "rs add":
                adds += 1
                if adds > 6:
                    continue
            trimmed.append(row)
        print(render_timeline(trimmed, title=f"secret = {secret}"))
        print()


if __name__ == "__main__":
    show(
        gdnpeu_victim(),
        "dom-nontso",
        ["z", "f0", "f1", "f2", "f3", "load A", "load B", "access",
         "transmitter", "gadget"],
        "Figure 3: GDNPEU — gadget ops steal the non-pipelined unit, "
        "delaying the f-chain and load A past load B (secret=1 only)",
    )
    show(
        gdmshr_victim(),
        "invisispec-spectre",
        ["load A", "load B", "access", "mshr"],
        "Figure 4: GDMSHR — 8 speculative distinct-line misses exhaust "
        "the MSHRs, stalling load A's D-cache access (secret=1 only)",
    )
    show(
        girs_victim(),
        "dom-nontso",
        ["chase0", "access", "transmitter", "rs add", "target instr"],
        "Figure 5: GIRS — a missing transmitter strands the adds in the "
        "RS; the frontend freezes and the target line is never fetched "
        "(secret=1)",
    )
