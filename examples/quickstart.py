#!/usr/bin/env python3
"""Quickstart: the paper's story in three acts.

1. Spectre v1 leaks a secret through the cache on an unprotected core.
2. Invisible speculation (Delay-on-Miss) blocks Spectre.
3. A speculative *interference* attack leaks through Delay-on-Miss
   anyway, by reordering two bound-to-retire loads and decoding the
   order from the LLC's QLRU replacement state.

Run:  python examples/quickstart.py
"""

from repro.core.attack import DCacheAttack
from repro.core.spectre import spectre_leak_trial


def act1_spectre_on_unsafe():
    print("=" * 72)
    print("Act 1 - classic Spectre v1 on the unprotected baseline")
    print("=" * 72)
    secret = 13
    result = spectre_leak_trial("unsafe", secret)
    print(f"  victim secret byte:        {secret}")
    print(f"  attacker probe hits:       {result.hits}")
    print(f"  attacker recovered:        {result.recovered}")
    assert result.leaked
    print("  => the mis-speculated fill persisted; the secret leaked.\n")


def act2_dom_blocks_spectre():
    print("=" * 72)
    print("Act 2 - Delay-on-Miss (invisible speculation) blocks Spectre")
    print("=" * 72)
    result = spectre_leak_trial("dom-nontso", 13)
    print(f"  attacker probe hits:       {result.hits}")
    print(f"  attacker recovered:        {result.recovered}")
    assert not result.leaked
    print("  => no speculative load changed the cache; Spectre is dead.\n")


def act3_interference_breaks_dom():
    print("=" * 72)
    print("Act 3 - speculative interference leaks through Delay-on-Miss")
    print("=" * 72)
    print("  The mis-speculated gadget never touches the cache itself.")
    print("  It contends for the non-pipelined sqrt unit, delaying the")
    print("  *older, bound-to-retire* load A past reference load B; the")
    print("  attacker reads the A/B order from QLRU replacement state.\n")
    attack = DCacheAttack("dom-nontso")
    message = [1, 0, 1, 1, 0, 0, 1, 0]
    received = [attack.send_bit(bit).received for bit in message]
    print(f"  secret bits sent:          {message}")
    print(f"  bits decoded cross-core:   {received}")
    assert received == message
    print("  => 8/8 bits exfiltrated through an 'invisible' scheme.\n")
    print("Done. See examples/covert_channel.py and the benchmarks/ tree")
    print("for the full Table 1 / Figure 7 / Figure 11 / Figure 12 runs.")


if __name__ == "__main__":
    act1_spectre_on_unsafe()
    act2_dom_blocks_spectre()
    act3_interference_breaks_dom()
