#!/usr/bin/env python3
"""Walkthrough of the QLRU replacement-state receiver (§4.2.2, Fig. 8).

Shows, step by step, how the attacker decodes the *order* of two victim
loads from the QLRU_H11_M1_R0_U0 state of one shared-LLC set — the
paper's novel receiver, needed because Prime+Probe cannot distinguish
A-B from B-A (both lines end up cached either way).

Run:  python examples/replacement_state_receiver.py
"""

from repro.core.receivers import QLRUReceiver
from repro.core.victims import ADDR_A, ADDR_B, ATTACK_HIERARCHY
from repro.memory.hierarchy import AccessKind
from repro.system.agent import AttackerAgent
from repro.system.machine import Machine

VICTIM, ATTACKER = 0, 2


def name_of(line, receiver):
    if line is None:
        return "-"
    if line == receiver.line_a & ~63:
        return "A"
    if line == receiver.line_b & ~63:
        return "B"
    if line in receiver.evs1:
        return f"EV{receiver.evs1.index(line)}"
    if line in receiver.evs2:
        return f"EV{15 + receiver.evs2.index(line)}"
    return "?"


def show_set(receiver, caption):
    contents = receiver.set_snapshot()
    ages = receiver.set_ages()
    print(f"  {caption}")
    print("    line:", "  ".join(f"{name_of(l, receiver):>4s}" for l in contents))
    print("    age :", "  ".join(f"{a:>4d}" for a in ages))


def run(order_name, first, second):
    print("=" * 72)
    print(f"Victim access order: {order_name}")
    print("=" * 72)
    machine = Machine(3, hierarchy_config=ATTACK_HIERARCHY)
    agent = AttackerAgent(machine, ATTACKER)
    receiver = QLRUReceiver(agent, ADDR_A, ADDR_B)
    receiver.prime()
    show_set(receiver, "after prime (EVS1 x4 + A): EVS1 at age 0, A at age 1")
    for addr in (first, second):
        machine.hierarchy.access(VICTIM, addr, AccessKind.DATA, visible=True)
    show_set(receiver, f"after the victim's {order_name} accesses")
    bit = receiver.probe_and_decode()
    show_set(receiver, "after probe (EVS2) + timed reload of A")
    print(f"  decoded secret bit: {bit}"
          f"   (1 means A survived => victim issued B before A)")
    print()
    return bit


if __name__ == "__main__":
    assert run("A-B", ADDR_A, ADDR_B) == 0
    assert run("B-A", ADDR_B, ADDR_A) == 1
    print("Both orders decoded correctly — the replacement state is a")
    print("non-commutative function of the access sequence (§3.3).")
