#!/usr/bin/env python3
"""Fault-tolerant sweeps: isolation, retry, checkpoint-resume, live.

Uses the fault-injection harness (``repro.runner.faults``) to subject
one sweep to the three failures a long campaign actually meets —

  1. a trial whose configuration genuinely deadlocks (every attempt);
  2. a worker process killed mid-trial (once);
  3. a mid-sweep interruption (simulated by running only part of the
     grid first, journaling as we go);

— then shows the sweep completing anyway: the deadlock becomes a
structured failure record, the killed trial is retried with the same
seed, and resuming over the journal re-runs only what is missing while
matching a fault-free reference exactly.

    python examples/fault_tolerant_sweep.py
    python examples/fault_tolerant_sweep.py --workers 4
"""

import argparse
import os
import tempfile

from repro.runner import (
    FaultPlan,
    FaultSpec,
    TrialJournal,
    expand_grid,
    make_runner,
)
from repro.runner import faults

VICTIMS = ["gdnpeu", "gdmshr", "girs"]
SCHEMES = ["dom-nontso", "invisispec-spectre", "fence-spectre"]


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (default: cpu count, or REPRO_SWEEP_WORKERS)",
    )
    args = parser.parse_args(argv)

    specs = expand_grid(VICTIMS, SCHEMES)
    print(f"Sweep: {len(VICTIMS)} victims x {len(SCHEMES)} schemes x 2 secrets "
          f"= {len(specs)} trials\n")

    # A fault-free reference to compare everything against.
    with make_runner(args.workers) as runner:
        reference = runner.run(specs)
    print(f"[reference]  {len(reference)} trials ok, "
          f"{reference.elapsed:.2f}s on {reference.workers} worker(s)")

    # Inject: one permanently deadlocking trial, one single-shot worker
    # kill.  The plan travels to pool workers automatically.
    faults.install_plan(FaultPlan((
        FaultSpec("deadlock", victim="gdnpeu", scheme="dom-nontso",
                  secret=1, at_cycle=100, max_attempts=99),
        FaultSpec("worker-kill", victim="gdmshr", scheme="fence-spectre",
                  secret=0, max_attempts=1),
    )))

    journal_path = os.path.join(tempfile.mkdtemp(), "sweep.jsonl")
    journal = TrialJournal(journal_path)

    # "Interrupted" first run: only part of the grid executes, each
    # finished trial checkpointed the moment it completes.
    with make_runner(args.workers) as runner:
        runner.run(specs[: len(specs) // 2], journal=journal)
    print(f"[interrupt]  stopped mid-sweep with {len(journal)} trials "
          f"checkpointed in {journal_path}")

    # Resume over the full grid, faults still active.
    with make_runner(args.workers) as runner:
        result = runner.run(specs, journal=journal)

    print(f"[resume]     {len(result)} ok / {len(result.failures)} failed "
          f"of {len(result.outcomes)} trials")
    for failure in result.failures:
        print(f"             failure: {failure.describe()}")
    retried = [o for o in result.outcomes if o.ok and o.attempts > 1]
    for outcome in retried:
        print(f"             retried: {outcome.describe()}")

    faults.clear_plan()

    ok = result.succeeded()
    expected = [s for s in reference
                if not (s.victim, s.scheme, s.secret) == ("gdnpeu", "dom-nontso", 1)]
    assert ok == expected, "resumed sweep diverged from the reference"
    print("\nEvery surviving trial matches the fault-free reference exactly; "
          "the deadlock is data, not a crash.")
    return 0


if __name__ == "__main__":
    import sys

    raise SystemExit(main(sys.argv[1:]))
