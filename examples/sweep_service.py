#!/usr/bin/env python3
"""The supervised sweep service: submit, stream, crash, recover.

Walks the full service-tier lifecycle against a throwaway service
directory —

  1. submit a victim x scheme x secret grid as a job (the queue is
     durable: the job exists before any daemon does);
  2. start a supervisor daemon in another process and watch per-trial
     deltas stream as workers finish;
  3. SIGKILL the daemon mid-sweep — no warning, no cleanup;
  4. start a *fresh* supervisor on the same directory: it adopts the
     half-done job, waits out leases still held by the orphaned
     workers, re-runs only the trials that never reached the journal;

— and then proves the point: the recovered result is bit-identical to
an uninterrupted in-process run of the same grid.

    python examples/sweep_service.py

The same flow is available from the shell (`python -m repro.service
serve/submit/tail/result`), and `python -m repro.service chaos-smoke`
runs the heavier version of this script's crash with I/O faults, torn
cache entries, and skewed clocks layered on top.
"""

import multiprocessing
import os
import signal
import tempfile
import time

from repro.runner import SerialSweepRunner
from repro.runner.spec import expand_grid
from repro.service import ServiceClient, SweepSupervisor
from repro.service.codec import result_signature

VICTIMS = ["gdnpeu", "gdmshr"]
SCHEMES = ["dom-nontso", "fence-spectre"]


def _serve(service_dir):
    """First daemon incarnation (runs until SIGKILLed by the parent)."""
    SweepSupervisor(
        service_dir, workers=2, chunksize=2, lease_ttl=1.0,
        poll_interval=0.01,
    ).run_forever()


def main():
    service_dir = tempfile.mkdtemp(prefix="repro-svc-demo-")
    specs = expand_grid(VICTIMS, SCHEMES)

    # 1. Submit before any daemon exists: the job just queues.
    client = ServiceClient(service_dir)
    job_id = client.submit(specs)
    print(f"[submit]   job {job_id}: {len(specs)} trials -> {service_dir}")

    # 2. Daemon in another process; deltas stream as trials finish.
    # Not daemon=True: the supervisor spawns worker child processes.
    daemon = multiprocessing.get_context("fork").Process(
        target=_serve, args=(service_dir,)
    )
    daemon.start()
    while client.progress(job_id)["finished"] < len(specs) // 2:
        time.sleep(0.01)
    done = client.progress(job_id)["finished"]
    print(f"[stream]   {done}/{len(specs)} trials journaled, daemon alive")

    # 3. Crash: SIGKILL, mid-sweep, no cleanup.
    os.kill(daemon.pid, signal.SIGKILL)
    daemon.join()
    print(f"[crash]    daemon pid {daemon.pid} SIGKILLed "
          f"(exitcode {daemon.exitcode})")

    # 4. Fresh incarnation on the same directory: adopt and finish.
    SweepSupervisor(
        service_dir, workers=2, chunksize=2, lease_ttl=1.0,
        poll_interval=0.01,
    ).run_until_idle(timeout=300.0)
    result = client.result(job_id)
    assert result is not None, "recovered supervisor did not finish the job"
    print(f"[recover]  second incarnation drained the job: "
          f"{len(result.outcomes)} outcomes, {len(result.failures)} failures")

    # A couple of the streamed deltas, plus the terminal marker.
    events, _ = client.deltas(job_id)
    for record in events[:2]:
        print(f"[delta]    {record.get('event')}: digest="
              f"{record.get('digest')} status={record.get('status')}")
    print(f"[terminal] {events[-1].get('event')}")

    # The acceptance invariant: crash + recovery changed nothing.
    reference = SerialSweepRunner().run(specs)
    assert result_signature(result.outcomes) == result_signature(
        reference.outcomes
    ), "recovered result diverged from the uninterrupted reference"
    print("\nRecovered result is bit-identical to an uninterrupted run: "
          "the crash cost wall-clock time, not correctness.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
