#!/usr/bin/env python3
"""Static gadget analysis demo: hand-rolled program for the analyzer.

Builds a Spectre-style bounds-check gadget whose speculative body feeds
a secret-derived value into the non-pipelined sqrt/div unit — the
GD-NPEU pattern of §3.2.1 — and exposes it as ``PROGRAM`` /
``SECRET_ADDRS`` / ``REGISTERS``, the contract
``python -m repro.staticcheck`` expects from a file target.

Run either way:

    python examples/staticcheck_demo.py
    python -m repro.staticcheck examples/staticcheck_demo.py
"""

from repro.core.victims import ADDR_SECRET
from repro.isa.builder import ProgramBuilder
from repro.pipeline.config import NONPIPELINED_PORT

ADDR_LIMIT = 0x8000


def build_program():
    b = ProgramBuilder()
    # if (i < limit)  — mistrained to predict taken when i >= limit.
    b.load("limit", [], lambda: ADDR_LIMIT, name="load bound")
    b.branch_if(["i", "limit"], lambda i, n: i < n, "body", name="bounds check")
    b.jump("end")
    b.label("body")
    # Speculative body: secret load feeding the non-pipelined unit.
    b.load("sec", [], lambda: ADDR_SECRET, name="load secret")
    prev = "sec"
    for k in range(6):
        b.alu(
            f"d{k}",
            [prev],
            lambda v: v + 1,
            latency=15,
            port=NONPIPELINED_PORT,
            name=f"sqrtdiv {k}",
        )
        prev = f"d{k}"
    b.label("end")
    b.halt()
    return b.build()


PROGRAM = build_program()
SECRET_ADDRS = (ADDR_SECRET,)
REGISTERS = {"i": 100}


def main():
    from repro.staticcheck import analyze_program

    report = analyze_program(
        PROGRAM,
        secret_addrs=SECRET_ADDRS,
        registers=REGISTERS,
        name="staticcheck-demo",
    )
    print(report.render())


if __name__ == "__main__":
    main()
